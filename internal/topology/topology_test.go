package topology

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := PaperExample()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	bads := []Config{
		{},
		{Pods: 0, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 1, CoresPerPlane: 1},
		{Pods: 1, SpinesPerPod: -1, LeavesPerPod: 1, HostsPerLeaf: 1, CoresPerPlane: 1},
		{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 0, HostsPerLeaf: 1, CoresPerPlane: 1},
		{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 0, CoresPerPlane: 1},
		{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 1, CoresPerPlane: 0},
	}
	for i, cfg := range bads {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected error", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted invalid config", i)
		}
	}
}

func TestPaperExampleCounts(t *testing.T) {
	topo := MustNew(PaperExample())
	if got := topo.NumHosts(); got != 64 {
		t.Errorf("NumHosts = %d, want 64", got)
	}
	if got := topo.NumLeaves(); got != 8 {
		t.Errorf("NumLeaves = %d, want 8", got)
	}
	if got := topo.NumSpines(); got != 8 {
		t.Errorf("NumSpines = %d, want 8", got)
	}
	if got := topo.NumCores(); got != 4 {
		t.Errorf("NumCores = %d, want 4", got)
	}
	if got := topo.NumSwitches(); got != 20 {
		t.Errorf("NumSwitches = %d, want 20", got)
	}
}

func TestFacebookFabricCounts(t *testing.T) {
	topo := MustNew(FacebookFabric())
	if got := topo.NumHosts(); got != 27648 {
		t.Errorf("NumHosts = %d, want 27648 (paper: 27,648 hosts)", got)
	}
	if got := topo.NumLeaves(); got != 576 {
		t.Errorf("NumLeaves = %d, want 576", got)
	}
}

func TestHostRelations(t *testing.T) {
	topo := MustNew(PaperExample()) // 8 hosts/leaf, 2 leaves/pod
	// Host 9 is port 1 of leaf 1 (pod 0).
	h := HostID(9)
	if l := topo.HostLeaf(h); l != 1 {
		t.Errorf("HostLeaf(9) = %d, want 1", l)
	}
	if p := topo.HostPort(h); p != 1 {
		t.Errorf("HostPort(9) = %d, want 1", p)
	}
	if p := topo.HostPod(h); p != 0 {
		t.Errorf("HostPod(9) = %d, want 0", p)
	}
	if got := topo.HostAt(1, 1); got != h {
		t.Errorf("HostAt(1,1) = %d, want %d", got, h)
	}
	// Host 63 is the last host: leaf 7, pod 3, port 7.
	if l := topo.HostLeaf(63); l != 7 {
		t.Errorf("HostLeaf(63) = %d, want 7", l)
	}
	if p := topo.HostPod(63); p != 3 {
		t.Errorf("HostPod(63) = %d, want 3", p)
	}
}

func TestLeafSpineCoreRelations(t *testing.T) {
	topo := MustNew(PaperExample())
	// Leaf 5 is leaf index 1 of pod 2 (paper Fig. 3 labels L5 in P2).
	if p := topo.LeafPod(5); p != 2 {
		t.Errorf("LeafPod(5) = %d, want 2", p)
	}
	if i := topo.LeafIndexInPod(5); i != 1 {
		t.Errorf("LeafIndexInPod(5) = %d, want 1", i)
	}
	if l := topo.LeafAt(2, 1); l != 5 {
		t.Errorf("LeafAt(2,1) = %d, want 5", l)
	}
	// Spine 5 is plane 1 of pod 2.
	if p := topo.SpinePod(5); p != 2 {
		t.Errorf("SpinePod(5) = %d, want 2", p)
	}
	if pl := topo.SpinePlane(5); pl != 1 {
		t.Errorf("SpinePlane(5) = %d, want 1", pl)
	}
	// Leaf 5's upstream port 1 reaches spine plane 1 of pod 2 = spine 5.
	if s := topo.LeafUpstream(5, 1); s != 5 {
		t.Errorf("LeafUpstream(5,1) = %d, want 5", s)
	}
	// Spine 5 downstream port 0 reaches leaf 4.
	if l := topo.SpineDownstream(5, 0); l != 4 {
		t.Errorf("SpineDownstream(5,0) = %d, want 4", l)
	}
	// Spine 5 (plane 1) upstream port 0 reaches core 2 (plane 1's first).
	if c := topo.SpineUpstream(5, 0); c != 2 {
		t.Errorf("SpineUpstream(5,0) = %d, want 2", c)
	}
	if pl := topo.CorePlane(2); pl != 1 {
		t.Errorf("CorePlane(2) = %d, want 1", pl)
	}
	// Core 2 (plane 1) downstream to pod 3 reaches spine plane 1 of pod 3 = spine 7.
	if s := topo.CoreDownstream(2, 3); s != 7 {
		t.Errorf("CoreDownstream(2,3) = %d, want 7", s)
	}
}

func TestWidths(t *testing.T) {
	topo := MustNew(PaperExample())
	if topo.LeafDownWidth() != 8 || topo.LeafUpWidth() != 2 ||
		topo.SpineDownWidth() != 2 || topo.SpineUpWidth() != 2 ||
		topo.CoreDownWidth() != 4 {
		t.Fatalf("widths = %d %d %d %d %d", topo.LeafDownWidth(), topo.LeafUpWidth(),
			topo.SpineDownWidth(), topo.SpineUpWidth(), topo.CoreDownWidth())
	}
}

func TestHostsUnderLeaf(t *testing.T) {
	topo := MustNew(PaperExample())
	hosts := topo.HostsUnderLeaf(2)
	if len(hosts) != 8 || hosts[0] != 16 || hosts[7] != 23 {
		t.Fatalf("HostsUnderLeaf(2) = %v", hosts)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	topo := MustNew(PaperExample())
	cases := map[string]func(){
		"HostLeaf":       func() { topo.HostLeaf(64) },
		"LeafPod":        func() { topo.LeafPod(-1) },
		"SpinePod":       func() { topo.SpinePod(8) },
		"CorePlane":      func() { topo.CorePlane(4) },
		"LeafUpstream":   func() { topo.LeafUpstream(0, 2) },
		"SpineUpstream":  func() { topo.SpineUpstream(0, 2) },
		"LeafAt":         func() { topo.LeafAt(0, 2) },
		"SpineAt":        func() { topo.SpineAt(4, 0) },
		"HostAt":         func() { topo.HostAt(0, 8) },
		"HostsUnderLeaf": func() { topo.HostsUnderLeaf(8) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuickHostRoundTrip(t *testing.T) {
	topo := MustNew(FacebookFabric())
	f := func(raw uint32) bool {
		h := HostID(int(raw) % topo.NumHosts())
		l := topo.HostLeaf(h)
		return topo.HostAt(l, topo.HostPort(h)) == h &&
			topo.LeafAt(topo.LeafPod(l), topo.LeafIndexInPod(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUpDownSymmetry(t *testing.T) {
	topo := MustNew(FacebookFabric())
	cfg := topo.Config()
	f := func(rawSpine, rawPort uint16) bool {
		s := SpineID(int(rawSpine) % topo.NumSpines())
		up := int(rawPort) % cfg.CoresPerPlane
		c := topo.SpineUpstream(s, up)
		// The core's downstream port for the spine's pod must reach s back.
		return topo.CoreDownstream(c, topo.SpinePod(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFailureSet(t *testing.T) {
	topo := MustNew(PaperExample())
	var nilSet *FailureSet
	if nilSet.SpineFailed(0) || nilSet.CoreFailed(0) || !nilSet.Empty() {
		t.Fatal("nil FailureSet should report healthy")
	}
	f := NewFailureSet()
	if !f.Empty() {
		t.Fatal("new set not empty")
	}
	f.FailSpine(4) // pod 2 plane 0
	f.FailCore(1)  // plane 0
	if !f.SpineFailed(4) || !f.CoreFailed(1) {
		t.Fatal("failures not recorded")
	}
	if s, c := f.NumFailed(); s != 1 || c != 1 {
		t.Fatalf("NumFailed = %d,%d", s, c)
	}
	planes := f.HealthySpinePlanes(topo, 2)
	if len(planes) != 1 || planes[0] != 1 {
		t.Fatalf("HealthySpinePlanes(pod 2) = %v, want [1]", planes)
	}
	planesOther := f.HealthySpinePlanes(topo, 0)
	if len(planesOther) != 2 {
		t.Fatalf("HealthySpinePlanes(pod 0) = %v, want both planes", planesOther)
	}
	cores := f.HealthyCoresInPlane(topo, 0)
	if len(cores) != 1 || cores[0] != 0 {
		t.Fatalf("HealthyCoresInPlane(0) = %v, want [0]", cores)
	}
	f.RepairSpine(4)
	f.RepairCore(1)
	if !f.Empty() {
		t.Fatal("repair did not clear failures")
	}
}

func TestTwoTierLeafSpine(t *testing.T) {
	topo := MustNew(TwoTierLeafSpine(4, 24, 12))
	if topo.NumPods() != 1 || topo.NumSpines() != 4 || topo.NumLeaves() != 24 {
		t.Fatalf("two-tier dims: %s", topo)
	}
	if topo.NumHosts() != 288 {
		t.Fatalf("hosts = %d", topo.NumHosts())
	}
	// Every leaf's pod is pod 0; the core tier is vestigial (1 wide).
	if topo.LeafPod(23) != 0 || topo.CoreDownWidth() != 1 {
		t.Fatal("two-tier structure wrong")
	}
}
