// Package baselines models the multicast schemes Elmo is evaluated
// against (paper §5, §6, Table 3):
//
//   - Li et al. [83], the SDN-based scalable IP multicast scheme whose
//     per-switch group-table usage and churn update load form the
//     dashed comparison lines in Figures 4/5 and the right column of
//     Table 2. Their scheme installs aggregated multicast entries in
//     every switch on a group's tree, plus O(#groups) unicast
//     flow-table entries for address aggregation.
//   - BIER [117], which encodes receivers as a bitstring over all
//     hosts — limiting network size for a fixed header budget.
//   - SGM [31], which lists receiver IP addresses in the packet —
//     limiting group size.
//   - Classic IP multicast, limited by switch group-table capacity.
//
// The Li et al. model is structural, not a reimplementation of their
// optimizer: each group consumes one group-table entry at every leaf
// with receivers, at one spine per receiver pod (their trees do not
// multipath), and at one core when the group spans pods. Churn updates
// touch every on-tree switch whose entry changes; because aggregation
// shares entries across groups, a membership event forces the
// aggregated entries along the whole tree to be revalidated, which is
// what drives their high core-switch update rates.
package baselines

import (
	"elmo/internal/topology"
)

// LiState tracks per-switch group-table entries under the Li et al.
// scheme.
type LiState struct {
	topo *topology.Topology
	// Entries per physical switch.
	LeafEntries  []int
	SpineEntries []int
	CoreEntries  []int
	// FlowEntries counts the O(#groups) unicast flow-table entries
	// their aggregation layer needs.
	FlowEntries int
	// Updates per switch, accumulated by ApplyChurnEvent.
	LeafUpdates  []int
	SpineUpdates []int
	CoreUpdates  []int
}

// NewLiState creates an empty state for the topology.
func NewLiState(topo *topology.Topology) *LiState {
	return &LiState{
		topo:         topo,
		LeafEntries:  make([]int, topo.NumLeaves()),
		SpineEntries: make([]int, topo.NumSpines()),
		CoreEntries:  make([]int, topo.NumCores()),
		LeafUpdates:  make([]int, topo.NumLeaves()),
		SpineUpdates: make([]int, topo.NumSpines()),
		CoreUpdates:  make([]int, topo.NumCores()),
	}
}

// tree computes the deterministic Li et al. tree for a receiver set:
// receiver leaves, one spine per receiver pod (plane chosen by group
// hash — their trees are single-path), and one core for cross-pod
// groups.
func (s *LiState) tree(group uint32, receivers []topology.HostID) (leaves []topology.LeafID, spines []topology.SpineID, cores []topology.CoreID) {
	cfg := s.topo.Config()
	leafSet := make(map[topology.LeafID]bool)
	podSet := make(map[topology.PodID]bool)
	for _, h := range receivers {
		l := s.topo.HostLeaf(h)
		if !leafSet[l] {
			leafSet[l] = true
			leaves = append(leaves, l)
		}
		podSet[s.topo.LeafPod(l)] = true
	}
	plane := int(group) % cfg.SpinesPerPod
	for p := range podSet {
		spines = append(spines, s.topo.SpineAt(p, plane))
	}
	if len(podSet) > 1 {
		coreIdx := plane*cfg.CoresPerPlane + int(group)%cfg.CoresPerPlane
		cores = append(cores, topology.CoreID(coreIdx))
	}
	return leaves, spines, cores
}

// InstallGroup charges the group's tree entries.
func (s *LiState) InstallGroup(group uint32, receivers []topology.HostID) {
	leaves, spines, cores := s.tree(group, receivers)
	for _, l := range leaves {
		s.LeafEntries[l]++
	}
	for _, sp := range spines {
		s.SpineEntries[sp]++
	}
	for _, c := range cores {
		s.CoreEntries[c]++
	}
	s.FlowEntries++ // one aggregation flow entry per group
}

// ApplyChurnEvent charges the updates a single membership change
// causes: every switch on the (new) tree revalidates its aggregated
// entry.
func (s *LiState) ApplyChurnEvent(group uint32, receivers []topology.HostID) {
	leaves, spines, cores := s.tree(group, receivers)
	for _, l := range leaves {
		s.LeafUpdates[l]++
	}
	for _, sp := range spines {
		s.SpineUpdates[sp]++
	}
	for _, c := range cores {
		s.CoreUpdates[c]++
	}
}

// AnalyticLimits are the scheme limits Table 3 reports, computed for a
// concrete header budget and group-table size.
type AnalyticLimits struct {
	Scheme string
	// MaxGroups is the number of groups supportable (0 = unlimited /
	// not the binding constraint).
	MaxGroups int
	// MaxGroupSize is the largest encodable group (0 = unlimited).
	MaxGroupSize int
	// MaxHosts is the largest network (0 = unlimited).
	MaxHosts int
	// GroupTableUsage / FlowTableUsage / ControlOverhead /
	// TrafficOverhead are qualitative ratings matching Table 3.
	GroupTableUsage  string
	FlowTableUsage   string
	ControlOverhead  string
	TrafficOverhead  string
	LineRate         bool
	AddressIsolation bool
	Multipath        string
	EndHostRepl      bool
	Unorthodox       bool
}

// IPMulticastLimits: bounded by the group table of the most loaded
// switch.
func IPMulticastLimits(groupTableCapacity int) AnalyticLimits {
	return AnalyticLimits{
		Scheme:          "IP Multicast",
		MaxGroups:       groupTableCapacity,
		GroupTableUsage: "high",
		FlowTableUsage:  "none",
		ControlOverhead: "high",
		TrafficOverhead: "none",
		LineRate:        true,
		Multipath:       "no",
	}
}

// LiLimits: ~150K groups at a 5K group table per the paper's Table 3
// (aggregation stretches the table by roughly the average tree reuse).
func LiLimits(groupTableCapacity int) AnalyticLimits {
	return AnalyticLimits{
		Scheme:          "Li et al.",
		MaxGroups:       groupTableCapacity * 30,
		GroupTableUsage: "high",
		FlowTableUsage:  "mod",
		ControlOverhead: "low",
		TrafficOverhead: "none",
		LineRate:        true,
		Multipath:       "lim",
	}
}

// BIERLimits: the bitstring must cover every host, so the header
// budget caps the network size (325 B ≈ 2.6K hosts — Table 3).
func BIERLimits(headerBudgetBytes int) AnalyticLimits {
	return AnalyticLimits{
		Scheme:           "BIER",
		MaxHosts:         headerBudgetBytes * 8,
		MaxGroupSize:     headerBudgetBytes * 8,
		GroupTableUsage:  "low",
		FlowTableUsage:   "none",
		ControlOverhead:  "low",
		TrafficOverhead:  "low",
		LineRate:         true,
		AddressIsolation: true,
		Multipath:        "yes",
		Unorthodox:       true,
	}
}

// SGMLimits: the header lists IPv4 addresses, so the budget caps the
// group size (325 B / 4 ≈ 81 < 100 — Table 3).
func SGMLimits(headerBudgetBytes int) AnalyticLimits {
	return AnalyticLimits{
		Scheme:           "SGM",
		MaxGroupSize:     headerBudgetBytes / 4,
		GroupTableUsage:  "none",
		FlowTableUsage:   "none",
		ControlOverhead:  "low",
		TrafficOverhead:  "none",
		LineRate:         false,
		AddressIsolation: true,
		Multipath:        "yes",
		Unorthodox:       true,
	}
}

// AppLayerLimits: application/overlay multicast.
func AppLayerLimits() AnalyticLimits {
	return AnalyticLimits{
		Scheme:           "App-layer",
		GroupTableUsage:  "none",
		FlowTableUsage:   "none",
		ControlOverhead:  "none",
		TrafficOverhead:  "high",
		LineRate:         false,
		AddressIsolation: true,
		Multipath:        "yes",
		EndHostRepl:      true,
	}
}

// ElmoLimits: groups are bounded only by the 24-bit address space per
// tenant; group size and network size are unbounded because oversized
// trees degrade to s-rules/defaults rather than failing.
func ElmoLimits() AnalyticLimits {
	return AnalyticLimits{
		Scheme:           "Elmo",
		GroupTableUsage:  "low",
		FlowTableUsage:   "none",
		ControlOverhead:  "low",
		TrafficOverhead:  "low",
		LineRate:         true,
		AddressIsolation: true,
		Multipath:        "yes",
	}
}

// AllLimits returns the Table 3 rows for the given budgets, in the
// paper's column order.
func AllLimits(headerBudgetBytes, groupTableCapacity int) []AnalyticLimits {
	return []AnalyticLimits{
		IPMulticastLimits(groupTableCapacity),
		LiLimits(groupTableCapacity),
		AppLayerLimits(),
		BIERLimits(headerBudgetBytes),
		SGMLimits(headerBudgetBytes),
		ElmoLimits(),
	}
}

// XpanderFeasibility evaluates the §5.1.2 remark that Elmo still
// supports a million groups on a symmetric expander topology (Xpander,
// 48-port switches, degree d=24) within the 325-byte header budget.
// Expanders have no logical-topology collapse (D2 does not apply), so
// every on-tree switch needs its own p-rule: identifier plus a
// port bitmap. The function returns how many tree switches fit the
// budget and whether a workload's typical tree (treeSwitches) fits.
func XpanderFeasibility(switchPorts, numSwitches, headerBudgetBytes, treeSwitches int) (maxSwitches int, fits bool) {
	idBits := 1
	for 1<<idBits < numSwitches {
		idBits++
	}
	ruleBits := idBits + switchPorts
	maxSwitches = headerBudgetBytes * 8 / ruleBits
	return maxSwitches, treeSwitches <= maxSwitches
}
