package baselines

import (
	"testing"

	"elmo/internal/topology"
)

func TestLiTreeStructure(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	s := NewLiState(topo)
	// Fig. 3 group: receivers on L0 (pod 0), L5 (pod 2), L6/L7 (pod 3).
	receivers := []topology.HostID{0, 1, 40, 48, 49, 63}
	leaves, spines, cores := s.tree(4, receivers)
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	if len(spines) != 3 {
		t.Fatalf("spines = %v (one per receiver pod)", spines)
	}
	if len(cores) != 1 {
		t.Fatalf("cores = %v (cross-pod group uses one core)", cores)
	}
	// Single-pod group needs no core.
	_, _, cores = s.tree(4, []topology.HostID{0, 9})
	if len(cores) != 0 {
		t.Fatalf("single-pod cores = %v", cores)
	}
}

func TestLiInstallAndChurn(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	s := NewLiState(topo)
	receivers := []topology.HostID{0, 40}
	s.InstallGroup(1, receivers)
	if s.FlowEntries != 1 {
		t.Fatalf("flow entries = %d", s.FlowEntries)
	}
	totalLeaf := 0
	for _, n := range s.LeafEntries {
		totalLeaf += n
	}
	if totalLeaf != 2 {
		t.Fatalf("leaf entries = %d", totalLeaf)
	}
	s.ApplyChurnEvent(1, receivers)
	totalCoreU := 0
	for _, n := range s.CoreUpdates {
		totalCoreU += n
	}
	if totalCoreU != 1 {
		t.Fatalf("core updates = %d — Li et al. must touch cores on churn", totalCoreU)
	}
}

func TestLiDeterministicTree(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	s := NewLiState(topo)
	r := []topology.HostID{0, 40, 63}
	l1, s1, c1 := s.tree(9, r)
	l2, s2, c2 := s.tree(9, r)
	if len(l1) != len(l2) || len(s1) != len(s2) || len(c1) != len(c2) {
		t.Fatal("tree not deterministic")
	}
	// A different group hash may pick a different plane.
	_, sp1, _ := s.tree(0, r)
	_, sp2, _ := s.tree(1, r)
	if topo.SpinePlane(sp1[0]) == topo.SpinePlane(sp2[0]) {
		t.Fatal("plane selection ignores group hash")
	}
}

func TestAnalyticLimitsMatchTable3(t *testing.T) {
	// Paper Table 3: budgets are a 5,000-entry group table and a
	// 325-byte header.
	rows := AllLimits(325, 5000)
	byName := make(map[string]AnalyticLimits)
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	if got := byName["IP Multicast"].MaxGroups; got != 5000 {
		t.Errorf("IP multicast groups = %d, paper says 5K", got)
	}
	if got := byName["BIER"].MaxHosts; got != 2600 {
		t.Errorf("BIER hosts = %d, paper says 2.6K", got)
	}
	if got := byName["SGM"].MaxGroupSize; got != 81 {
		t.Errorf("SGM group size = %d, paper says <100", got)
	}
	if byName["Elmo"].MaxGroups != 0 || byName["Elmo"].MaxGroupSize != 0 || byName["Elmo"].MaxHosts != 0 {
		t.Error("Elmo should report no hard limits")
	}
	if !byName["Elmo"].LineRate || byName["SGM"].LineRate || byName["App-layer"].LineRate {
		t.Error("line-rate flags wrong")
	}
	if !byName["App-layer"].EndHostRepl || byName["Elmo"].EndHostRepl {
		t.Error("end-host replication flags wrong")
	}
	if byName["BIER"].Unorthodox != true || byName["Elmo"].Unorthodox != false {
		t.Error("unorthodox-capability flags wrong")
	}
}

func TestXpanderFeasibility(t *testing.T) {
	// Paper §5.1.2: Xpander with 48-port switches, degree 24, a
	// 27,000-host network (~1,000 switches), 325-byte budget. A
	// WVE-typical tree (a few tens of switches: short expander paths
	// reach ~60 members through ~40 switches) must fit.
	max, fits := XpanderFeasibility(48, 1150, 325, 40)
	if !fits {
		t.Fatalf("typical tree does not fit (max %d)", max)
	}
	if max < 40 || max > 60 {
		t.Fatalf("max switches = %d, expected ~44 (325*8 / (11+48))", max)
	}
	// A giant tree exceeds the budget and would need s-rules/defaults.
	if _, fits := XpanderFeasibility(48, 1150, 325, 200); fits {
		t.Fatal("200-switch tree should not fit the header")
	}
}
