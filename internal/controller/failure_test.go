package controller

import (
	"testing"

	"elmo/internal/topology"
)

// TestCoverUpstreamMultiPlane drives the §3.3 greedy set cover into a
// configuration where no single spine plane reaches every receiver
// pod, so the sender's upstream rules must pin multiple planes.
func TestCoverUpstreamMultiPlane(t *testing.T) {
	topo := paperTopo() // 4 pods, 2 planes
	cfg := testConfig(0)
	// Receivers in pods 2 and 3; sender in pod 0.
	receivers := []topology.HostID{40, 56} // L5 (pod 2), L7 (pod 3)
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), receivers)
	if err != nil {
		t.Fatal(err)
	}
	failures := topology.NewFailureSet()
	// Pod 2 reachable only via plane 1 (spine 4 = pod2/plane0 dead);
	// pod 3 reachable only via plane 0 (spine 7 = pod3/plane1 dead).
	failures.FailSpine(4)
	failures.FailSpine(7)

	h, err := SenderHeader(topo, cfg, enc, 0, failures)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf.Multipath || h.USpine.Multipath {
		t.Fatal("multipath should be disabled")
	}
	if h.ULeaf.Up.PopCount() != 2 {
		t.Fatalf("u-leaf up = %s, want both planes", h.ULeaf.Up)
	}
	if h.USpine.Up.IsEmpty() {
		t.Fatal("u-spine core ports missing")
	}
}

// TestCoverUpstreamCoreOnlyFailure: when one plane loses all its
// cores, cross-pod groups must pin the surviving plane.
func TestCoverUpstreamCoreOnlyFailure(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), []topology.HostID{40})
	if err != nil {
		t.Fatal(err)
	}
	failures := topology.NewFailureSet()
	failures.FailCore(0) // plane 0
	failures.FailCore(1) // plane 0 (cores 0,1 are plane 0)
	h, err := SenderHeader(topo, cfg, enc, 0, failures)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf.Multipath {
		t.Fatal("multipath should be off")
	}
	if !h.ULeaf.Up.Test(1) || h.ULeaf.Up.Test(0) {
		t.Fatalf("u-leaf up = %s, want plane 1 only", h.ULeaf.Up)
	}
}

// TestCoverUpstreamSinglePodUnderFailure: a single-pod group needs any
// healthy spine of its own pod, no cores.
func TestCoverUpstreamSinglePodUnderFailure(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	// Receivers under leaves 0 and 1 (pod 0).
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), []topology.HostID{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	failures := topology.NewFailureSet()
	failures.FailSpine(0) // pod 0 plane 0
	h, err := SenderHeader(topo, cfg, enc, 0, failures)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf.Multipath {
		t.Fatal("multipath should be off")
	}
	if !h.ULeaf.Up.Test(1) || h.ULeaf.Up.PopCount() != 1 {
		t.Fatalf("u-leaf up = %s", h.ULeaf.Up)
	}
	if h.USpine == nil || !h.USpine.Up.IsEmpty() {
		t.Fatal("single-pod group must not pin core ports")
	}
}

// TestRecomputeRollbackOnLegacyFailure: when a membership change makes
// the encoding impossible (legacy table full), the controller must
// roll back to the previous encoding and keep occupancy consistent.
func TestRecomputeRollbackOnLegacyFailure(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LegacyLeaves = []topology.LeafID{7}
	cfg.SRuleCapacity = 1
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 holds the only slot on legacy leaf 7.
	if _, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]Role{0: RoleBoth, 57: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	// Group 2 lives elsewhere.
	if _, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 2},
		map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	occBefore := c.LeafSRuleCount(7)
	// Joining a host under the legacy leaf must fail (table full)...
	if err := c.Join(GroupKey{Tenant: 1, Group: 2}, 63, RoleReceiver); err == nil {
		t.Fatal("join through full legacy table accepted")
	}
	// ...without corrupting occupancy or the existing group.
	if c.LeafSRuleCount(7) != occBefore {
		t.Fatalf("occupancy changed: %d -> %d", occBefore, c.LeafSRuleCount(7))
	}
	g1 := c.Group(GroupKey{Tenant: 1, Group: 1})
	if _, ok := g1.Enc.LeafSRules[7]; !ok {
		t.Fatal("group 1 lost its legacy s-rule")
	}
	// Group 2 remains usable for its previous members.
	if _, err := c.HeaderFor(GroupKey{Tenant: 1, Group: 2}, 0); err != nil {
		t.Fatalf("group 2 unusable after rollback: %v", err)
	}
}

// TestGroupKeysOrdering covers the facade's enumeration helper.
func TestGroupKeysOrdering(t *testing.T) {
	topo := paperTopo()
	c, _ := New(topo, testConfig(0))
	for _, k := range []GroupKey{{2, 1}, {1, 2}, {1, 1}} {
		if _, err := c.CreateGroup(k, map[topology.HostID]Role{0: RoleBoth}); err != nil {
			t.Fatal(err)
		}
	}
	keys := c.GroupKeys()
	want := []GroupKey{{1, 1}, {1, 2}, {2, 1}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

// TestJoinRollbackRevertsMembership: a failed join must leave the
// membership set untouched, not just the encoding.
func TestJoinRollbackRevertsMembership(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LegacyLeaves = []topology.LeafID{7}
	cfg.SRuleCapacity = 1
	c, _ := New(topo, cfg)
	if _, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]Role{0: RoleBoth, 57: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	g2 := GroupKey{Tenant: 1, Group: 2}
	if _, err := c.CreateGroup(g2, map[topology.HostID]Role{0: RoleBoth}); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(g2, 63, RoleReceiver); err == nil {
		t.Fatal("expected join failure")
	}
	if _, member := c.Group(g2).Members[63]; member {
		t.Fatal("failed join left the member in the group")
	}
}
