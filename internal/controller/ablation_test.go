package controller

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elmo/internal/topology"
)

// TestAblationFigure3Narrative reproduces the §3.1 size-reduction
// story on the running example: per-switch rules (paper: 161 bits) >
// logical-topology encoding (83 bits, "a reduction of 48%") > shared
// bitmaps (62 bits, "a decrease of 25%"). Exact constants depend on
// bit-accounting details the paper doesn't fully specify; the test
// pins the magnitudes and the two documented reduction ratios to
// loose windows around the paper's.
func TestAblationFigure3Narrative(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(2)
	cfg.LeafRuleLimit = 2
	sizes, err := Ablation(topo, cfg, figure3Receivers(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(sizes.D1Bits > sizes.D2Bits && sizes.D2Bits > sizes.D3Bits) {
		t.Fatalf("stages not monotone: %s", sizes)
	}
	// Paper: 161 -> 83 (-48%) -> 62 (-25%).
	d2Cut := 1 - float64(sizes.D2Bits)/float64(sizes.D1Bits)
	d3Cut := 1 - float64(sizes.D3Bits)/float64(sizes.D2Bits)
	if d2Cut < 0.25 || d2Cut > 0.75 {
		t.Errorf("D1->D2 reduction %.0f%%, paper reports 48%% (%s)", 100*d2Cut, sizes)
	}
	if d3Cut < 0.05 || d3Cut > 0.50 {
		t.Errorf("D2->D3 reduction %.0f%%, paper reports 25%% (%s)", 100*d3Cut, sizes)
	}
	// Magnitudes in the paper's ballpark (tens to ~200 bits).
	if sizes.D1Bits < 80 || sizes.D1Bits > 300 {
		t.Errorf("D1 = %d bits, paper's example is 161", sizes.D1Bits)
	}
	if sizes.D3Bits < 30 || sizes.D3Bits > 120 {
		t.Errorf("D3 = %d bits, paper's example is 62", sizes.D3Bits)
	}
}

func TestQuickAblationMonotone(t *testing.T) {
	topo := topology.MustNew(topology.Config{Pods: 6, SpinesPerPod: 2, LeavesPerPod: 6, HostsPerLeaf: 8, CoresPerPlane: 2})
	cfg := Config{
		MaxHeaderBytes: 512, SpineRuleLimit: 6, LeafRuleLimit: 40,
		KMaxSpine: 3, KMaxLeaf: 3, R: 6, SRuleCapacity: 0,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 3
		seen := make(map[topology.HostID]bool)
		var receivers []topology.HostID
		for len(receivers) < n {
			h := topology.HostID(rng.Intn(topo.NumHosts()))
			if !seen[h] {
				seen[h] = true
				receivers = append(receivers, h)
			}
		}
		sizes, err := Ablation(topo, cfg, receivers, receivers[rng.Intn(len(receivers))])
		if err != nil {
			return false
		}
		// D1 >= D2 >= D3 always; sharing can only help.
		return sizes.D1Bits >= sizes.D2Bits && sizes.D2Bits >= sizes.D3Bits && sizes.D3Bits > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNoPopBytes(t *testing.T) {
	// 10 links, 100-byte inner, 60-byte header: no-pop traffic is
	// exactly links x (outer+inner+header).
	got := NoPopBytes(10, 100, 60)
	if got != 10*(50+100+60) {
		t.Fatalf("NoPopBytes = %d", got)
	}
}
