package controller

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
)

func paperTopo() *topology.Topology { return topology.MustNew(topology.PaperExample()) }

// figure3Receivers returns the members of the paper's Fig. 3 group:
// Ha, Hb (L0); Hk (L5); Hm, Hn (L6); Hp (L7).
// Host numbering: L0 hosts 0-7, L5 hosts 40-47, L6 hosts 48-55, L7
// hosts 56-63.
func figure3Receivers() []topology.HostID {
	return []topology.HostID{0, 1, 40, 48, 49, 63}
}

func testConfig(r int) Config {
	return Config{
		MaxHeaderBytes: 325,
		SpineRuleLimit: 2,
		LeafRuleLimit:  30,
		KMaxSpine:      2,
		KMaxLeaf:       2,
		R:              r,
		SRuleCapacity:  4,
	}
}

func TestComputeEncodingFigure3(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 2 // the figure's scenario allows two leaf p-rules
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), figure3Receivers())
	if err != nil {
		t.Fatal(err)
	}
	// Pods 0, 2, 3 have receivers.
	if !enc.Pods.Test(0) || !enc.Pods.Test(2) || !enc.Pods.Test(3) || enc.Pods.Test(1) {
		t.Fatalf("pods = %s", enc.Pods.String())
	}
	// Leaf ports: L0 -> hosts 0,1; L5 -> port 0; L6 -> ports 0,1; L7 -> port 7.
	if got := enc.LeafPorts[0].String(); got != "11000000" {
		t.Fatalf("L0 ports = %s", got)
	}
	if got := enc.LeafPorts[5].String(); got != "10000000" {
		t.Fatalf("L5 ports = %s", got)
	}
	if got := enc.LeafPorts[7].String(); got != "00000001" {
		t.Fatalf("L7 ports = %s", got)
	}
	// Pod leaves: pod 0 -> leaf 0 (index 0), pod 2 -> leaf 5 (index 1),
	// pod 3 -> both leaves.
	if got := enc.PodLeaves[0].String(); got != "10" {
		t.Fatalf("pod 0 leaves = %s", got)
	}
	if got := enc.PodLeaves[3].String(); got != "11" {
		t.Fatalf("pod 3 leaves = %s", got)
	}
	// R=0, no s-rule capacity: L0 and L6 share a p-rule (identical
	// bitmaps); L5 gets one; L7 overflows to the default.
	if len(enc.DLeaf) != 2 {
		t.Fatalf("leaf p-rules = %d, want 2", len(enc.DLeaf))
	}
	if enc.DLeafDefault == nil {
		t.Fatal("expected leaf default rule")
	}
	if enc.Exact() {
		t.Fatal("Exact() should be false with a default rule")
	}
}

func TestComputeEncodingWithSRules(t *testing.T) {
	topo := paperTopo()
	cap := CapacityFunc{
		Leaf: func(topology.LeafID) bool { return true },
		Pod:  func(topology.PodID) bool { return true },
	}
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 2
	enc, err := ComputeEncoding(topo, cfg, cap, figure3Receivers())
	if err != nil {
		t.Fatal(err)
	}
	// With capacity, L7 takes an s-rule instead of the default (D5).
	if enc.DLeafDefault != nil {
		t.Fatal("default rule used despite s-rule capacity")
	}
	if _, ok := enc.LeafSRules[7]; !ok {
		t.Fatalf("expected s-rule on L7, got %v", enc.LeafSRules)
	}
	if !enc.Exact() || !enc.UsesSRules() {
		t.Fatal("Exact/UsesSRules flags wrong")
	}
}

func TestComputeEncodingR2SharesAll(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(2)
	cfg.LeafRuleLimit = 2 // the figure's 2-rule budget forces sharing
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), figure3Receivers())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 3a, R=2: two leaf p-rules, no s-rules, no default.
	if len(enc.DLeaf) != 2 || enc.DLeafDefault != nil || len(enc.LeafSRules) != 0 {
		t.Fatalf("R=2: rules=%d default=%v srules=%v", len(enc.DLeaf), enc.DLeafDefault, enc.LeafSRules)
	}
	if enc.Redundancy == 0 {
		t.Fatal("R=2 sharing should record redundancy")
	}
}

func TestComputeEncodingEmpty(t *testing.T) {
	enc, err := ComputeEncoding(paperTopo(), testConfig(0), NoCapacity(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Exact() || len(enc.DLeaf) != 0 || enc.Pods.PopCount() != 0 {
		t.Fatal("empty receiver set should produce empty encoding")
	}
}

func TestSenderHeaderFigure3(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), figure3Receivers())
	if err != nil {
		t.Fatal(err)
	}
	// Sender Ha = host 0 (L0, pod 0).
	h, err := SenderHeader(topo, cfg, enc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf == nil || !h.ULeaf.Multipath {
		t.Fatal("u-leaf missing or not multipathed")
	}
	// Ha's u-leaf down must deliver Hb (port 1) only.
	if h.ULeaf.Down.String() != "01000000" {
		t.Fatalf("u-leaf down = %s", h.ULeaf.Down)
	}
	if h.USpine == nil || !h.USpine.Multipath {
		t.Fatal("u-spine missing or not multipathed")
	}
	// Pod 0 has no other member leaves.
	if !h.USpine.Down.IsEmpty() {
		t.Fatalf("u-spine down = %s, want empty", h.USpine.Down)
	}
	// Core: pods 2 and 3, not the sender's pod 0.
	if h.Core == nil || h.Core.String() != "0011" {
		t.Fatalf("core = %v", h.Core)
	}
	// Encoded size must respect the budget and round-trip.
	l := header.LayoutFor(topo)
	wire, err := header.Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > cfg.MaxHeaderBytes {
		t.Fatalf("header %d bytes exceeds budget", len(wire))
	}
}

func TestSenderHeaderSameRackOnly(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	// All receivers under leaf 0.
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), []topology.HostID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := SenderHeader(topo, cfg, enc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.USpine != nil || h.Core != nil {
		t.Fatal("single-rack group should not carry upstream spine/core sections")
	}
	if h.ULeaf == nil || h.ULeaf.Multipath {
		t.Fatal("single-rack u-leaf should not multipath")
	}
	if h.ULeaf.Down.PopCount() != 3 {
		t.Fatalf("u-leaf down = %s", h.ULeaf.Down)
	}
	// d-leaf rules that exclusively name the sender's leaf are elided.
	if len(h.DLeaf) != 0 {
		t.Fatalf("d-leaf rules = %v, want none", h.DLeaf)
	}
}

func TestSenderHeaderSenderOnlyHost(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	// Receivers all in pod 3; sender in pod 0 is not a receiver.
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), []topology.HostID{48, 56})
	if err != nil {
		t.Fatal(err)
	}
	h, err := SenderHeader(topo, cfg, enc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf == nil || !h.ULeaf.Down.IsEmpty() {
		t.Fatal("sender-only host should have empty u-leaf down")
	}
	if h.Core == nil || h.Core.String() != "0001" {
		t.Fatalf("core = %v", h.Core)
	}
}

func TestSenderHeaderNoReceivers(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := SenderHeader(topo, cfg, enc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf != nil || h.USpine != nil || h.Core != nil {
		t.Fatal("no receivers should produce an empty header")
	}
}

func TestControllerLifecycle(t *testing.T) {
	topo := paperTopo()
	c, err := New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 5, Group: 9}
	members := map[topology.HostID]Role{
		0: RoleBoth, 1: RoleReceiver, 40: RoleBoth, 63: RoleSender,
	}
	g, err := c.CreateGroup(key, members)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Receivers()); got != 3 {
		t.Fatalf("receivers = %d, want 3", got)
	}
	if got := len(g.Senders()); got != 3 {
		t.Fatalf("senders = %d, want 3", got)
	}
	if _, err := c.CreateGroup(key, members); err == nil {
		t.Fatal("duplicate create accepted")
	}
	// Sender-only host can get a header; receiver-only cannot.
	if _, err := c.HeaderFor(key, 63); err != nil {
		t.Fatalf("sender header: %v", err)
	}
	if _, err := c.HeaderFor(key, 1); err == nil {
		t.Fatal("receiver-only host got a sender header")
	}
	// Join a receiver; tree changes.
	if err := c.Join(key, 48, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if len(c.Group(key).Receivers()) != 4 {
		t.Fatal("join did not add receiver")
	}
	// Re-join with same role is a no-op.
	before := c.Stats().Total()
	if err := c.Join(key, 48, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Total() != before {
		t.Fatal("no-op join charged updates")
	}
	// Leave.
	if err := c.Leave(key, 48, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(key, 48, RoleReceiver); err == nil {
		t.Fatal("double leave accepted")
	}
	if err := c.RemoveGroup(key); err != nil {
		t.Fatal(err)
	}
	if c.NumGroups() != 0 {
		t.Fatal("group not removed")
	}
	if err := c.RemoveGroup(key); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestSenderOnlyJoinTouchesOneHypervisor(t *testing.T) {
	topo := paperTopo()
	c, _ := New(topo, testConfig(0))
	key := GroupKey{Tenant: 1, Group: 1}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if err := c.Join(key, 8, RoleSender); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hypervisor[8] != 1 || len(st.Hypervisor) != 1 {
		t.Fatalf("sender-only join updates = %v, want only host 8", st.Hypervisor)
	}
	if len(st.Leaf) != 0 || len(st.Spine) != 0 || st.Core != 0 {
		t.Fatal("sender-only join touched network switches")
	}
}

func TestReceiverJoinUpdatesSenders(t *testing.T) {
	topo := paperTopo()
	c, _ := New(topo, testConfig(0))
	key := GroupKey{Tenant: 1, Group: 2}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleSender, 8: RoleSender, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if err := c.Join(key, 56, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Both senders' hypervisors refresh headers; the joining host's
	// hypervisor gets its delivery rule.
	if st.Hypervisor[0] != 1 || st.Hypervisor[8] != 1 || st.Hypervisor[56] != 1 {
		t.Fatalf("hypervisor updates = %v", st.Hypervisor)
	}
	if st.Core != 0 {
		t.Fatal("core switches must never receive updates")
	}
}

func TestSRuleAccounting(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0 // force everything to s-rules/default
	cfg.SpineRuleLimit = 0
	cfg.SRuleCapacity = 2
	c, _ := New(topo, cfg)
	key := GroupKey{Tenant: 1, Group: 3}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver, 56: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	g := c.Group(key)
	if len(g.Enc.LeafSRules) == 0 {
		t.Fatal("expected leaf s-rules with zero p-rule budget")
	}
	for l := range g.Enc.LeafSRules {
		if c.LeafSRuleCount(l) != 1 {
			t.Fatalf("leaf %d occupancy = %d", l, c.LeafSRuleCount(l))
		}
	}
	if err := c.RemoveGroup(key); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		if c.LeafSRuleCount(topology.LeafID(l)) != 0 {
			t.Fatalf("leaf %d occupancy leaked", l)
		}
	}
}

func TestSRuleCapacityExhaustionFallsToDefault(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0
	cfg.SpineRuleLimit = 0
	cfg.SRuleCapacity = 1
	c, _ := New(topo, cfg)
	// Two groups on the same leaves; the second must overflow to
	// default p-rules once capacity is consumed.
	m := map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}
	if _, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 1}, m); err != nil {
		t.Fatal(err)
	}
	g2, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 2}, m)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Enc.DLeafDefault == nil {
		t.Fatal("second group should use a default leaf rule")
	}
}

func TestFailureHandling(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	c, _ := New(topo, cfg)
	key := GroupKey{Tenant: 2, Group: 1}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver, 56: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	// Fail the spine the sender's flow actually transits (the
	// controller predicts the ECMP plane).
	outer := dataplane.SenderOuter(topo, 0, dataplane.GroupAddr{VNI: 2, Group: 1})
	plane, _ := dataplane.PredictPath(topo, outer, 0)
	failed := topo.SpineAt(0, plane)
	impacted := c.FailSpine(failed)
	if impacted != 1 {
		t.Fatalf("impacted = %d, want 1", impacted)
	}
	h, err := c.HeaderFor(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.ULeaf.Multipath {
		t.Fatal("multipath should be disabled under failure")
	}
	// The chosen plane must avoid the failed spine.
	if h.ULeaf.Up.Test(plane) || h.ULeaf.Up.IsEmpty() {
		t.Fatalf("u-leaf up = %s (failed plane %d)", h.ULeaf.Up, plane)
	}
	if h.USpine.Up.IsEmpty() {
		t.Fatal("u-spine explicit core port missing")
	}
	// Repair restores multipathing.
	c.RepairSpine(failed)
	h2, err := c.HeaderFor(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.ULeaf.Multipath {
		t.Fatal("multipath not restored after repair")
	}
}

func TestFailureNoPath(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	c, _ := New(topo, cfg)
	key := GroupKey{Tenant: 2, Group: 2}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	// Fail both spines of the sender's pod: no upstream path remains.
	c.FailSpine(0)
	c.FailSpine(1)
	if _, err := c.HeaderFor(key, 0); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestCoreFailureImpactsOnlyTransitingGroups(t *testing.T) {
	topo := paperTopo()
	c, _ := New(topo, testConfig(0))
	// Group 1 spans pods; group 2 is single-pod.
	if _, err := c.CreateGroup(GroupKey{Tenant: 3, Group: 1}, map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateGroup(GroupKey{Tenant: 3, Group: 2}, map[topology.HostID]Role{0: RoleBoth, 8: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	// The controller predicts the exact core the cross-pod group's
	// sender flow transits; failing that core impacts exactly one
	// group (the single-pod group never touches cores).
	outer := dataplane.SenderOuter(topo, 0, dataplane.GroupAddr{VNI: 3, Group: 1})
	_, usedCore := dataplane.PredictPath(topo, outer, 0)
	if impacted := c.FailCore(usedCore); impacted != 1 {
		t.Fatalf("used-core failure impacted %d groups, want 1", impacted)
	}
	c.RepairCore(usedCore)
	// Failing a core the flow does not transit impacts nothing.
	other := topology.CoreID((int(usedCore) + 1) % topo.NumCores())
	if impacted := c.FailCore(other); impacted != 0 {
		t.Fatalf("unused-core failure impacted %d groups, want 0", impacted)
	}
	c.RepairCore(other)
}

func TestQuickSenderHeaderFitsBudgetAndParses(t *testing.T) {
	topo := topology.MustNew(topology.Config{Pods: 6, SpinesPerPod: 2, LeavesPerPod: 6, HostsPerLeaf: 8, CoresPerPlane: 2})
	cfg := Config{
		MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
		KMaxSpine: 2, KMaxLeaf: 2, R: 6, SRuleCapacity: 8,
	}
	l := header.LayoutFor(topo)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		seen := make(map[topology.HostID]bool)
		var receivers []topology.HostID
		for len(receivers) < n {
			h := topology.HostID(rng.Intn(topo.NumHosts()))
			if !seen[h] {
				seen[h] = true
				receivers = append(receivers, h)
			}
		}
		enc, err := ComputeEncoding(topo, cfg, NoCapacity(), receivers)
		if err != nil {
			return false
		}
		sender := receivers[rng.Intn(len(receivers))]
		h, err := SenderHeader(topo, cfg, enc, sender, nil)
		if err != nil {
			return false
		}
		wire, err := header.Encode(l, h)
		if err != nil || len(wire) > cfg.MaxHeaderBytes {
			return false
		}
		_, _, err = header.Decode(l, wire)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRuleGeneration60Members(b *testing.B) {
	// §5.1.3: the controller computes a group's p- and s-rules in
	// ~0.2 ms (paper, Python); this measures the same operation.
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := PaperConfig(6)
	rng := rand.New(rand.NewSource(21))
	receivers := make([]topology.HostID, 60)
	for i := range receivers {
		receivers[i] = topology.HostID(rng.Intn(topo.NumHosts()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeEncoding(topo, cfg, NoCapacity(), receivers); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFailureRepairCycleRestoresState walks the full §3.3 repair
// path: fail a spine and a core, recompute mid-failure (membership
// churn while degraded), repair, recompute again — and check the
// sender encoding and the per-switch s-rule charge both return
// exactly to their pre-failure state.
func TestFailureRepairCycleRestoresState(t *testing.T) {
	topo := paperTopo()
	c, err := New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 5, Group: 9}
	members := map[topology.HostID]Role{0: RoleBoth}
	for _, h := range figure3Receivers()[1:] {
		members[h] = RoleReceiver
	}
	if _, err := c.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	lay := header.LayoutFor(topo)
	snapshot := func() ([]byte, []int, []int) {
		hdr, err := c.HeaderFor(key, 0)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := header.Encode(lay, hdr)
		if err != nil {
			t.Fatal(err)
		}
		leaves := make([]int, topo.NumLeaves())
		for l := range leaves {
			leaves[l] = c.LeafSRuleCount(topology.LeafID(l))
		}
		spines := make([]int, topo.NumSpines())
		for s := range spines {
			spines[s] = c.SpineSRuleCount(topology.SpineID(s))
		}
		return wire, leaves, spines
	}
	preWire, preLeaf, preSpine := snapshot()

	c.FailSpine(0)
	c.FailCore(0)
	mid, err := c.HeaderFor(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mid.ULeaf.Multipath {
		t.Fatal("failure-mode header still multipaths")
	}

	// Recompute while degraded: churn one receiver so the encoder
	// re-runs under the failure view.
	if err := c.Leave(key, 63, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(key, 63, RoleReceiver); err != nil {
		t.Fatal(err)
	}

	c.RepairSpine(0)
	c.RepairCore(0)
	// Recompute after repair: churn again back to the same membership.
	if err := c.Leave(key, 63, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(key, 63, RoleReceiver); err != nil {
		t.Fatal(err)
	}

	postWire, postLeaf, postSpine := snapshot()
	if !bytes.Equal(preWire, postWire) {
		t.Fatalf("post-repair encoding differs:\npre  %x\npost %x", preWire, postWire)
	}
	for l := range preLeaf {
		if preLeaf[l] != postLeaf[l] {
			t.Fatalf("leaf %d s-rule count %d -> %d across fail/repair", l, preLeaf[l], postLeaf[l])
		}
	}
	for s := range preSpine {
		if preSpine[s] != postSpine[s] {
			t.Fatalf("spine %d s-rule count %d -> %d across fail/repair", s, preSpine[s], postSpine[s])
		}
	}
}
