package controller

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// This file serializes the controller's FULL state — membership plus
// the computed encodings and their s-rule installations — in a
// deterministic binary form. It differs from Snapshot/Restore
// (snapshot.go) on purpose: the JSON snapshot carries only the paper's
// soft state and recomputes encodings on restore, which is correct but
// slow and, on a capacity-constrained fabric, can legally land s-rules
// on different switches than the crashed instance had (the encoder's
// choices depend on table occupancy, which depends on op history).
// The durable controller needs the recovered instance to be
// byte-identical to the one that crashed, so its snapshots use
// WriteState/ReadState: encodings are restored verbatim and occupancy
// is recommitted from them, no recompute, no history dependence.
//
// The format is versioned and deliberately simple: uvarint-framed,
// sorted group order, bitmap wire bytes with widths implied by the
// topology. Fingerprint hashes exactly these bytes, so two controllers
// with equal fingerprints have identical groups, members, encodings,
// and (derived) occupancy.

// stateVersion guards the binary state format.
const stateVersion = 1

// WriteState serializes the full controller state deterministically.
func (c *Controller) WriteState(w io.Writer) error {
	c.rlockAllShards()
	defer c.runlockAllShards()
	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch []byte
	putUvarint := func(v uint64) {
		scratch = binary.AppendUvarint(scratch[:0], v)
		bw.Write(scratch)
	}
	putBitmap := func(b bitmap.Bitmap) {
		scratch = b.AppendWire(scratch[:0])
		bw.Write(scratch)
	}

	putUvarint(stateVersion)
	groups := make(map[GroupKey]*GroupState, c.numGroupsLocked())
	for _, sh := range c.shards {
		for k, g := range sh.groups {
			groups[k] = g
		}
	}
	keys := make([]GroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Group < keys[j].Group
	})
	putUvarint(uint64(len(keys)))
	for _, key := range keys {
		g := groups[key]
		putUvarint(uint64(key.Tenant))
		putUvarint(uint64(key.Group))
		hosts := make([]topology.HostID, 0, len(g.Members))
		for h := range g.Members {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		putUvarint(uint64(len(hosts)))
		for _, h := range hosts {
			putUvarint(uint64(h))
			bw.WriteByte(byte(g.Members[h]))
		}
		if g.Enc == nil {
			bw.WriteByte(0)
			continue
		}
		bw.WriteByte(1)
		writeEncoding(bw, putUvarint, putBitmap, g.Enc)
	}
	return bw.Flush()
}

// writeEncoding serializes one encoding (sorted map order throughout).
func writeEncoding(bw *bufio.Writer, putUvarint func(uint64), putBitmap func(bitmap.Bitmap), e *Encoding) {
	putBitmap(e.Pods)

	leaves := make([]topology.LeafID, 0, len(e.LeafPorts))
	for l := range e.LeafPorts {
		leaves = append(leaves, l)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	putUvarint(uint64(len(leaves)))
	for _, l := range leaves {
		putUvarint(uint64(l))
		putBitmap(e.LeafPorts[l])
	}

	pods := make([]topology.PodID, 0, len(e.PodLeaves))
	for p := range e.PodLeaves {
		pods = append(pods, p)
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i] < pods[j] })
	putUvarint(uint64(len(pods)))
	for _, p := range pods {
		putUvarint(uint64(p))
		putBitmap(e.PodLeaves[p])
	}

	writeRules := func(rules []header.PRule) {
		putUvarint(uint64(len(rules)))
		for _, r := range rules {
			putUvarint(uint64(len(r.Switches)))
			for _, sw := range r.Switches {
				putUvarint(uint64(sw))
			}
			putBitmap(r.Bitmap)
		}
	}
	writeDefault := func(d *bitmap.Bitmap) {
		if d == nil {
			bw.WriteByte(0)
			return
		}
		bw.WriteByte(1)
		putBitmap(*d)
	}
	writeRules(e.DSpine)
	writeDefault(e.DSpineDefault)
	writeRules(e.DLeaf)
	writeDefault(e.DLeafDefault)

	spods := make([]topology.PodID, 0, len(e.SpineSRules))
	for p := range e.SpineSRules {
		spods = append(spods, p)
	}
	sort.Slice(spods, func(i, j int) bool { return spods[i] < spods[j] })
	putUvarint(uint64(len(spods)))
	for _, p := range spods {
		putUvarint(uint64(p))
		putBitmap(e.SpineSRules[p])
	}

	sleaves := make([]topology.LeafID, 0, len(e.LeafSRules))
	for l := range e.LeafSRules {
		sleaves = append(sleaves, l)
	}
	sort.Slice(sleaves, func(i, j int) bool { return sleaves[i] < sleaves[j] })
	putUvarint(uint64(len(sleaves)))
	for _, l := range sleaves {
		putUvarint(uint64(l))
		putBitmap(e.LeafSRules[l])
	}

	putUvarint(uint64(e.LeafRedundancy))
	putUvarint(uint64(e.SpineRedundancy))
	putUvarint(uint64(e.Redundancy))
}

// stateReader decodes the WriteState stream with bounds checking; any
// malformed input surfaces as an error, never a panic.
type stateReader struct {
	r   *bufio.Reader
	buf []byte
}

func (sr *stateReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return 0, fmt.Errorf("controller: state truncated: %w", err)
	}
	return v, nil
}

// count reads a length that bounds a following repetition; cap guards
// absurd values from corrupt input before any allocation.
func (sr *stateReader) count(cap uint64, what string) (int, error) {
	v, err := sr.uvarint()
	if err != nil {
		return 0, err
	}
	if v > cap {
		return 0, fmt.Errorf("controller: state %s count %d exceeds bound %d", what, v, cap)
	}
	return int(v), nil
}

func (sr *stateReader) bitmap(width int) (bitmap.Bitmap, error) {
	n := bitmap.ByteLen(width)
	if cap(sr.buf) < n {
		sr.buf = make([]byte, n)
	}
	sr.buf = sr.buf[:n]
	if _, err := io.ReadFull(sr.r, sr.buf); err != nil {
		return bitmap.Bitmap{}, fmt.Errorf("controller: state truncated bitmap: %w", err)
	}
	b, _, err := bitmap.FromWire(width, sr.buf)
	if err != nil {
		return bitmap.Bitmap{}, fmt.Errorf("controller: state bitmap: %w", err)
	}
	return b, nil
}

// ReadState restores a controller from a WriteState stream. The
// receiving controller must be empty; on any decode or validation
// error it is left empty (all-or-nothing), never half-restored.
// Encodings are installed verbatim and occupancy recommitted from
// them; update counters reset (recovery is a bulk push).
func (c *Controller) ReadState(r io.Reader) error {
	type loadedGroup struct {
		key GroupKey
		g   *GroupState
	}
	sr := &stateReader{r: bufio.NewReaderSize(r, 1<<20)}
	version, err := sr.uvarint()
	if err != nil {
		return err
	}
	if version != stateVersion {
		return fmt.Errorf("controller: state version %d, want %d", version, stateVersion)
	}
	numHosts := uint64(c.topo.NumHosts())
	numGroups, err := sr.count(1<<48, "group")
	if err != nil {
		return err
	}
	groups := make([]loadedGroup, 0, min(numGroups, 1<<20))
	seen := GroupKey{}
	for gi := 0; gi < numGroups; gi++ {
		tenant, err := sr.uvarint()
		if err != nil {
			return err
		}
		group, err := sr.uvarint()
		if err != nil {
			return err
		}
		if tenant > 0xffffffff || group > 0xffffffff {
			return fmt.Errorf("controller: state key out of range")
		}
		key := GroupKey{Tenant: uint32(tenant), Group: uint32(group)}
		if gi > 0 && (key.Tenant < seen.Tenant || (key.Tenant == seen.Tenant && key.Group <= seen.Group)) {
			return fmt.Errorf("controller: state groups out of order at %v", key)
		}
		seen = key
		nm, err := sr.count(numHosts, "member")
		if err != nil {
			return err
		}
		g := &GroupState{Key: key, Members: make(map[topology.HostID]Role, nm)}
		for mi := 0; mi < nm; mi++ {
			h, err := sr.uvarint()
			if err != nil {
				return err
			}
			if h >= numHosts {
				return fmt.Errorf("controller: state host %d outside topology", h)
			}
			role, err := sr.r.ReadByte()
			if err != nil {
				return fmt.Errorf("controller: state truncated role: %w", err)
			}
			if Role(role) == 0 || Role(role)&^RoleBoth != 0 {
				return fmt.Errorf("controller: state host %d has invalid role %d", h, role)
			}
			g.Members[topology.HostID(h)] = Role(role)
		}
		hasEnc, err := sr.r.ReadByte()
		if err != nil {
			return fmt.Errorf("controller: state truncated: %w", err)
		}
		switch hasEnc {
		case 0:
		case 1:
			enc, err := sr.readEncoding(c.topo)
			if err != nil {
				return fmt.Errorf("controller: state group %v: %w", key, err)
			}
			g.Enc = enc
		default:
			return fmt.Errorf("controller: state group %v: bad encoding flag %d", key, hasEnc)
		}
		groups = append(groups, loadedGroup{key: key, g: g})
	}

	// Decode finished without error: commit atomically.
	c.lockAll()
	defer c.unlockAll()
	if n := c.numGroupsLocked(); n != 0 {
		return fmt.Errorf("controller: state restore into non-empty controller (%d groups)", n)
	}
	for _, lg := range groups {
		c.shardOf(lg.key).groups[lg.key] = lg.g
		c.occ.Commit(lg.g.Enc)
	}
	for _, sh := range c.shards {
		sh.stats = newUpdateStats()
	}
	return nil
}

// readEncoding decodes one encoding with topology-derived widths.
func (sr *stateReader) readEncoding(topo *topology.Topology) (*Encoding, error) {
	e := &Encoding{}
	var err error
	if e.Pods, err = sr.bitmap(topo.CoreDownWidth()); err != nil {
		return nil, err
	}
	numLeaves := uint64(topo.NumLeaves())
	numPods := uint64(topo.Config().Pods)

	n, err := sr.count(numLeaves, "leaf-ports")
	if err != nil {
		return nil, err
	}
	e.LeafPorts = make(map[topology.LeafID]bitmap.Bitmap, n)
	for i := 0; i < n; i++ {
		l, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		if l >= numLeaves {
			return nil, fmt.Errorf("leaf %d outside topology", l)
		}
		bm, err := sr.bitmap(topo.LeafDownWidth())
		if err != nil {
			return nil, err
		}
		e.LeafPorts[topology.LeafID(l)] = bm
	}

	n, err = sr.count(numPods, "pod-leaves")
	if err != nil {
		return nil, err
	}
	e.PodLeaves = make(map[topology.PodID]bitmap.Bitmap, n)
	for i := 0; i < n; i++ {
		p, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		if p >= numPods {
			return nil, fmt.Errorf("pod %d outside topology", p)
		}
		bm, err := sr.bitmap(topo.SpineDownWidth())
		if err != nil {
			return nil, err
		}
		e.PodLeaves[topology.PodID(p)] = bm
	}

	readRules := func(width int, maxSwitch uint64) ([]header.PRule, error) {
		n, err := sr.count(1<<16, "p-rule")
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		rules := make([]header.PRule, n)
		for i := range rules {
			ns, err := sr.count(maxSwitch, "rule-switch")
			if err != nil {
				return nil, err
			}
			sws := make([]uint16, ns)
			for j := range sws {
				sw, err := sr.uvarint()
				if err != nil {
					return nil, err
				}
				if sw >= maxSwitch {
					return nil, fmt.Errorf("rule switch %d out of range", sw)
				}
				sws[j] = uint16(sw)
			}
			bm, err := sr.bitmap(width)
			if err != nil {
				return nil, err
			}
			rules[i] = header.PRule{Switches: sws, Bitmap: bm}
		}
		return rules, nil
	}
	readDefault := func(width int) (*bitmap.Bitmap, error) {
		flag, err := sr.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("truncated default flag: %w", err)
		}
		switch flag {
		case 0:
			return nil, nil
		case 1:
			bm, err := sr.bitmap(width)
			if err != nil {
				return nil, err
			}
			return &bm, nil
		default:
			return nil, fmt.Errorf("bad default flag %d", flag)
		}
	}

	if e.DSpine, err = readRules(topo.SpineDownWidth(), numPods); err != nil {
		return nil, err
	}
	if e.DSpineDefault, err = readDefault(topo.SpineDownWidth()); err != nil {
		return nil, err
	}
	if e.DLeaf, err = readRules(topo.LeafDownWidth(), numLeaves); err != nil {
		return nil, err
	}
	if e.DLeafDefault, err = readDefault(topo.LeafDownWidth()); err != nil {
		return nil, err
	}

	n, err = sr.count(numPods, "spine-srule")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		e.SpineSRules = make(map[topology.PodID]bitmap.Bitmap, n)
		for i := 0; i < n; i++ {
			p, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			if p >= numPods {
				return nil, fmt.Errorf("s-rule pod %d outside topology", p)
			}
			bm, err := sr.bitmap(topo.SpineDownWidth())
			if err != nil {
				return nil, err
			}
			e.SpineSRules[topology.PodID(p)] = bm
		}
	}

	n, err = sr.count(numLeaves, "leaf-srule")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		e.LeafSRules = make(map[topology.LeafID]bitmap.Bitmap, n)
		for i := 0; i < n; i++ {
			l, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			if l >= numLeaves {
				return nil, fmt.Errorf("s-rule leaf %d outside topology", l)
			}
			bm, err := sr.bitmap(topo.LeafDownWidth())
			if err != nil {
				return nil, err
			}
			e.LeafSRules[topology.LeafID(l)] = bm
		}
	}

	lr, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	sp, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	tot, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	e.LeafRedundancy, e.SpineRedundancy, e.Redundancy = int(lr), int(sp), int(tot)
	return e, nil
}

// Fingerprint hashes the full controller state (WriteState bytes):
// equal fingerprints mean identical groups, members, encodings, and
// s-rule occupancy. Update counters are excluded — a recovered
// controller legitimately starts with fresh stats.
func (c *Controller) Fingerprint() string {
	h := sha256.New()
	if err := c.WriteState(h); err != nil {
		// WriteState only fails on writer errors; sha256 never errors.
		return "fingerprint-error: " + err.Error()
	}
	return hex.EncodeToString(h.Sum(nil))
}
