package controller

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"elmo/internal/topology"
)

// The paper's controller keeps only soft state (§2): group membership
// and placement, from which every rule is recomputable. This file
// makes that explicit — a Snapshot carries exactly the soft state
// (members and roles per group), and Restore rebuilds a controller's
// encodings and occupancy deterministically from it. Providers use
// this for controller failover and for moving groups between
// controller shards.

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// Snapshot is the serializable soft state of a controller.
type Snapshot struct {
	Version int             `json:"version"`
	Groups  []GroupSnapshot `json:"groups"`
}

// GroupSnapshot is one group's membership.
type GroupSnapshot struct {
	Tenant  uint32           `json:"tenant"`
	Group   uint32           `json:"group"`
	Members []MemberSnapshot `json:"members"`
}

// MemberSnapshot is one member with its role.
type MemberSnapshot struct {
	Host topology.HostID `json:"host"`
	Role Role            `json:"role"`
}

// Snapshot captures the controller's soft state. The output is
// deterministic (groups and members sorted).
func (c *Controller) Snapshot() *Snapshot {
	s := &Snapshot{Version: snapshotVersion}
	c.rlockAllShards()
	defer c.runlockAllShards()
	groups := make(map[GroupKey]*GroupState)
	for _, sh := range c.shards {
		for k, g := range sh.groups {
			groups[k] = g
		}
	}
	keys := make([]GroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Group < keys[j].Group
	})
	for _, key := range keys {
		g := groups[key]
		gs := GroupSnapshot{Tenant: key.Tenant, Group: key.Group}
		for h, r := range g.Members {
			gs.Members = append(gs.Members, MemberSnapshot{Host: h, Role: r})
		}
		sort.Slice(gs.Members, func(i, j int) bool { return gs.Members[i].Host < gs.Members[j].Host })
		s.Groups = append(s.Groups, gs)
	}
	return s
}

// WriteSnapshot serializes the soft state as JSON.
func (c *Controller) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c.Snapshot())
}

// Restore rebuilds a controller's state from a snapshot. The receiving
// controller must be empty (fresh failover instance). Every group's
// encoding and the s-rule occupancy are recomputed; update counters are
// not charged (reinstallation after failover is a bulk push, not
// incremental updates).
//
// Restore is all-or-nothing: it validates the whole snapshot before
// touching controller state, and if any group's encoding fails (e.g.
// the snapshot does not fit this fabric's tables) it unwinds every
// group already installed, leaving the controller empty rather than
// half-restored.
func (c *Controller) Restore(s *Snapshot) error {
	if s.Version != snapshotVersion {
		return fmt.Errorf("controller: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	// Validate before mutating anything.
	numHosts := c.topo.NumHosts()
	built := make([]*GroupState, 0, len(s.Groups))
	seen := make(map[GroupKey]bool, len(s.Groups))
	for _, gs := range s.Groups {
		key := GroupKey{Tenant: gs.Tenant, Group: gs.Group}
		if seen[key] {
			return fmt.Errorf("controller: snapshot repeats group %v", key)
		}
		seen[key] = true
		g := &GroupState{Key: key, Members: make(map[topology.HostID]Role, len(gs.Members))}
		for _, m := range gs.Members {
			if m.Role == 0 || m.Role&^RoleBoth != 0 {
				return fmt.Errorf("controller: snapshot group %v host %d has invalid role %d", key, m.Host, m.Role)
			}
			if m.Host < 0 || int(m.Host) >= numHosts {
				return fmt.Errorf("controller: snapshot group %v host %d outside topology", key, m.Host)
			}
			if _, dup := g.Members[m.Host]; dup {
				return fmt.Errorf("controller: snapshot group %v repeats host %d", key, m.Host)
			}
			g.Members[m.Host] = m.Role
		}
		built = append(built, g)
	}
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		if len(sh.groups) != 0 {
			return fmt.Errorf("controller: restore into non-empty controller (%d groups)", c.numGroupsLocked())
		}
	}
	for i, g := range built {
		if err := c.installBarrierLocked(g); err != nil {
			// Unwind: release everything already committed so the
			// controller is exactly as empty as it started.
			for _, done := range built[:i] {
				c.occ.Release(done.Enc)
			}
			for _, sh := range c.shards {
				sh.groups = make(map[GroupKey]*GroupState)
			}
			return fmt.Errorf("controller: restoring %v: %w", g.Key, err)
		}
		c.shardOf(g.Key).groups[g.Key] = g
	}
	for _, sh := range c.shards {
		sh.stats = newUpdateStats()
	}
	return nil
}

// numGroupsLocked counts groups with all shard locks already held.
func (c *Controller) numGroupsLocked() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.groups)
	}
	return n
}

// ReadSnapshot parses a snapshot written by WriteSnapshot. Truncated
// streams, garbage bytes, and unknown versions all surface as errors;
// the returned snapshot, when non-nil, is structurally a snapshot this
// package could have written (Restore still validates its contents).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("controller: reading snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("controller: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	return &s, nil
}

// AllocateGroup reserves the next free group index for a tenant and
// creates the group, giving tenants the cloud-API experience of "give
// me a multicast group" without choosing addresses (they still may:
// CreateGroup with an explicit key coexists, and indices are scoped
// per tenant — address-space isolation).
func (c *Controller) AllocateGroup(tenant uint32, members map[topology.HostID]Role) (GroupKey, error) {
	c.rlockAllShards()
	next := uint32(1)
	for _, sh := range c.shards {
		for key := range sh.groups {
			if key.Tenant == tenant && key.Group >= next {
				next = key.Group + 1
			}
		}
	}
	c.runlockAllShards()
	if next >= 1<<24 {
		return GroupKey{}, fmt.Errorf("controller: tenant %d exhausted its group address space", tenant)
	}
	key := GroupKey{Tenant: tenant, Group: next}
	if _, err := c.CreateGroup(key, members); err != nil {
		return GroupKey{}, err
	}
	return key, nil
}
