package controller

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elmo/internal/topology"
	"elmo/internal/trace"
)

// This file implements the parallel bulk-install pipeline (§5.1.3
// controller scale): group encodings are independent except for the
// shared s-rule capacity counters, so the cluster/encoder phase shards
// across workers while a single committer admits s-rules in
// deterministic input order. Workers encode speculatively against
// point-in-time occupancy reads (capRecorder); the committer validates
// each recorded capacity answer against the live counters and recomputes
// serially on a mismatch, so the committed encodings and the final
// LeafSRuleCount/SpineSRuleCount are byte-identical for any worker
// count.

// BatchError wraps an error raised while encoding or committing one
// batch element, preserving the input index (all elements before Index
// were fully committed, exactly as a serial loop would leave them).
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("batch index %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// batchChunkSize is the unit of work a worker claims at a time: large
// enough to amortize scheduling, small enough to pipeline the committer
// behind the workers.
const batchChunkSize = 64

// EncodeBatch computes the encodings for n receiver sets using the
// given number of workers (<=0 means GOMAXPROCS) against shared s-rule
// occupancy, invoking commit(i, enc) sequentially in strict input
// order. The occupancy counters are charged after commit returns nil;
// a non-nil commit error (or an encoding error) aborts the batch with a
// *BatchError, leaving all earlier elements committed.
//
// receivers(i) must be pure: it may be called concurrently and more
// than once per index. The result is byte-identical to the serial loop
//
//	for i := range n { enc := ComputeEncoding(..., occ.CapacityFunc(), receivers(i)); commit(i, enc); occ.Commit(enc) }
//
// for every worker count. Returned is the number of elements whose
// speculative encoding was discarded and recomputed at the commit point
// because a capacity answer changed under it (contention on nearly-full
// tables).
func EncodeBatch(topo *topology.Topology, cfg Config, occ *Occupancy, n, workers int,
	receivers func(i int) []topology.HostID,
	commit func(i int, enc *Encoding) error) (recomputed int, err error) {
	if n == 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var s EncodeScratch
		for i := 0; i < n; i++ {
			enc, cerr := ComputeEncodingInto(topo, cfg, occ.CapacityFunc(), receivers(i), &s)
			if cerr != nil {
				return recomputed, &BatchError{Index: i, Err: cerr}
			}
			if cerr := commit(i, enc); cerr != nil {
				return recomputed, &BatchError{Index: i, Err: cerr}
			}
			occ.Commit(enc)
		}
		return 0, nil
	}

	type result struct {
		enc *Encoding
		rec *capRecorder
		err error
	}
	results := make([]result, n)
	chunks := (n + batchChunkSize - 1) / batchChunkSize
	ready := make([]chan struct{}, chunks)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker: encodings never alias it, so it
			// is reused across every element this worker encodes.
			var s EncodeScratch
			for !stop.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= chunks {
					return
				}
				lo := ci * batchChunkSize
				hi := lo + batchChunkSize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					rec := newCapRecorder(occ, nil)
					enc, cerr := ComputeEncodingInto(topo, cfg, rec.capacity(), receivers(i), &s)
					results[i] = result{enc: enc, rec: rec, err: cerr}
				}
				close(ready[ci])
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	// Deterministic commit order: admit element i only after 0..i-1,
	// validating the speculative capacity answers against the live
	// counters (which only this goroutine mutates during the batch).
	var commitScratch EncodeScratch
	for ci := 0; ci < chunks; ci++ {
		<-ready[ci]
		lo := ci * batchChunkSize
		hi := lo + batchChunkSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			r := results[i]
			enc := r.enc
			if r.err != nil || !r.rec.valid() {
				// The speculative run raced a capacity boundary (or
				// errored under a stale view): redo it serially at the
				// commit point — exactly what a serial loop would see.
				recomputed++
				var cerr error
				enc, cerr = ComputeEncodingInto(topo, cfg, occ.CapacityFunc(), receivers(i), &commitScratch)
				if cerr != nil {
					return recomputed, &BatchError{Index: i, Err: cerr}
				}
			}
			if cerr := commit(i, enc); cerr != nil {
				return recomputed, &BatchError{Index: i, Err: cerr}
			}
			occ.Commit(enc)
			results[i] = result{} // release speculative memory early
		}
	}
	return recomputed, nil
}

// BatchSpec is one group to install: its key and members with roles.
type BatchSpec struct {
	Key     GroupKey
	Members map[topology.HostID]Role
}

// BatchOptions tunes InstallBatch.
type BatchOptions struct {
	// Workers is the number of concurrent encoder workers; <=0 uses
	// GOMAXPROCS. The result is identical for every value.
	Workers int
}

// BatchResult reports what a bulk install did.
type BatchResult struct {
	// Installed counts groups committed (== len(specs) on success).
	Installed int
	// Recomputed counts encodings redone at the commit point because a
	// concurrent admission changed a capacity answer they relied on.
	Recomputed int
	// Workers is the effective worker count used.
	Workers int
}

// InstallBatch creates all the given groups, sharding the encoder phase
// across opts.Workers goroutines while admitting s-rules in input
// order, so the installed state — encodings, occupancy counters, update
// stats, trace events — is byte-identical to calling CreateGroup for
// each spec in slice order. On error (duplicate or empty key roles,
// legacy table overflow) the batch stops with a *BatchError; specs
// before the failing index remain installed, exactly like the serial
// loop.
//
// InstallBatch is safe to run concurrently with other controller
// operations, but the byte-identical-to-serial guarantee holds only for
// a quiescent controller (no concurrent mutations admitting s-rules).
func (c *Controller) InstallBatch(specs []BatchSpec, opts BatchOptions) (*BatchResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &BatchResult{Workers: workers}
	m := c.getMetrics()
	// The committer runs on this goroutine only, so a plain local carries
	// the inter-commit latency baseline race-free.
	last := m.now()
	receivers := func(i int) []topology.HostID {
		return receiversOf(specs[i].Members)
	}
	commit := func(i int, enc *Encoding) error {
		spec := specs[i]
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.groups[spec.Key]; ok {
			return fmt.Errorf("controller: group %v already exists", spec.Key)
		}
		g := &GroupState{Key: spec.Key, Members: make(map[topology.HostID]Role, len(spec.Members))}
		for h, r := range spec.Members {
			if r == 0 {
				return fmt.Errorf("controller: host %d has empty role", h)
			}
			g.Members[h] = r
		}
		g.Enc = enc
		c.groups[spec.Key] = g
		for h := range g.Members {
			c.stats.Hypervisor[h]++
		}
		c.traceEncode(spec.Key, enc)
		c.traceControl(trace.KindCreateGroup, spec.Key, int64(len(g.Members)), "")
		res.Installed++
		if m != nil {
			m.batchInstalled.Inc()
			now := time.Now()
			m.opLatency.install.Observe(now.Sub(last).Seconds())
			last = now
		}
		return nil
	}
	recomputed, err := EncodeBatch(c.topo, c.cfg, c.occ, len(specs), workers, receivers, commit)
	res.Recomputed = recomputed
	if m != nil && recomputed > 0 {
		m.batchRecompute.Add(int64(recomputed))
	}
	if err != nil {
		return res, fmt.Errorf("controller: install %w", err)
	}
	return res, nil
}

// receiversOf lists the receiving hosts of a member map, ascending —
// the same order GroupState.Receivers produces.
func receiversOf(members map[topology.HostID]Role) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(members))
	for h, r := range members {
		if r.CanReceive() {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}
