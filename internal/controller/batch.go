package controller

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elmo/internal/topology"
	"elmo/internal/trace"
)

// This file implements the parallel bulk-install pipeline (§5.1.3
// controller scale). Group encodings are independent except for the
// shared s-rule capacity counters, so the expensive work shards across
// goroutines at both ends of the pipeline:
//
//   - Encode: workers claim chunks and encode speculatively against
//     point-in-time occupancy reads (capRecorder).
//   - Admit: one sequencer validates each recorded capacity answer
//     against the live counters in strict input order (recomputing
//     serially on a mismatch) and charges occupancy — a short critical
//     section under the Occupancy admission mutex.
//   - Apply: per-shard committer goroutines insert the prepared group
//     state and charge update stats under their own shard lock, so the
//     map/stats work no longer serializes behind admission.
//
// Because admission order is exactly input order and occupancy answers
// are revalidated at the admit point, the committed encodings and the
// final LeafSRuleCount/SpineSRuleCount are byte-identical to a serial
// loop for any worker count and any shard count.

// BatchError wraps an error raised while encoding or committing one
// batch element, preserving the input index (all elements before Index
// were fully committed, exactly as a serial loop would leave them).
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("batch index %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// batchChunkSize is the unit of work a worker claims at a time: large
// enough to amortize scheduling, small enough to pipeline the committer
// behind the workers.
const batchChunkSize = 64

// ResolveWorkers resolves a requested worker count: values <= 0 mean
// one worker per available CPU (GOMAXPROCS). Every path that sizes a
// worker pool (EncodeBatch, InstallBatch, churn) resolves through this
// one helper so pool sizing can never diverge between them.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// EncodeBatch computes the encodings for n receiver sets using the
// given number of workers (<=0 means GOMAXPROCS) against shared s-rule
// occupancy, invoking commit(i, enc) sequentially in strict input
// order. Validation, commit, and the occupancy charge for one element
// form a single admission transaction under occ's admission mutex, so
// EncodeBatch runs correctly alongside other admitters (concurrent
// membership retrees, other batches) — though byte-identical results
// are only guaranteed against a quiescent occupancy. The occupancy
// counters are charged after commit returns nil; a non-nil commit
// error (or an encoding error) aborts the batch with a *BatchError,
// leaving all earlier elements committed.
//
// receivers(i) must be idempotent: it may be called concurrently and
// more than once per index. The result is byte-identical to the serial
// loop
//
//	for i := range n { enc := ComputeEncoding(..., occ.CapacityFunc(), receivers(i)); commit(i, enc); occ.Commit(enc) }
//
// for every worker count. Returned is the number of elements whose
// speculative encoding was discarded and recomputed at the commit point
// because a capacity answer changed under it (contention on nearly-full
// tables).
func EncodeBatch(topo *topology.Topology, cfg Config, occ *Occupancy, n, workers int,
	receivers func(i int) []topology.HostID,
	commit func(i int, enc *Encoding) error) (recomputed int, err error) {
	if n == 0 {
		return 0, nil
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial path: same speculate→validate shape as the parallel
		// committer so the admission mutex is never held during
		// encoding. With no concurrent admitter the recorded answers
		// always revalidate, so nothing is recomputed.
		var s EncodeScratch
		for i := 0; i < n; i++ {
			rec := newCapRecorder(occ, nil)
			enc, cerr := ComputeEncodingInto(topo, cfg, rec.capacity(), receivers(i), &s)
			occ.admit.Lock()
			if cerr != nil || !rec.valid() {
				recomputed++
				enc, cerr = ComputeEncodingInto(topo, cfg, occ.CapacityFunc(), receivers(i), &s)
				if cerr != nil {
					occ.admit.Unlock()
					return recomputed, &BatchError{Index: i, Err: cerr}
				}
			}
			if cerr := commit(i, enc); cerr != nil {
				occ.admit.Unlock()
				return recomputed, &BatchError{Index: i, Err: cerr}
			}
			occ.Commit(enc)
			occ.admit.Unlock()
		}
		return recomputed, nil
	}

	type result struct {
		enc *Encoding
		rec *capRecorder
		err error
	}
	results := make([]result, n)
	chunks := (n + batchChunkSize - 1) / batchChunkSize
	ready := make([]chan struct{}, chunks)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker: encodings never alias it, so it
			// is reused across every element this worker encodes.
			var s EncodeScratch
			for !stop.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= chunks {
					return
				}
				lo := ci * batchChunkSize
				hi := lo + batchChunkSize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					rec := newCapRecorder(occ, nil)
					enc, cerr := ComputeEncodingInto(topo, cfg, rec.capacity(), receivers(i), &s)
					results[i] = result{enc: enc, rec: rec, err: cerr}
				}
				close(ready[ci])
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	// Deterministic admission order: admit element i only after 0..i-1,
	// revalidating the speculative capacity answers against the live
	// counters inside the admission transaction.
	var commitScratch EncodeScratch
	for ci := 0; ci < chunks; ci++ {
		<-ready[ci]
		lo := ci * batchChunkSize
		hi := lo + batchChunkSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			r := results[i]
			enc := r.enc
			occ.admit.Lock()
			if r.err != nil || !r.rec.valid() {
				// The speculative run raced a capacity boundary (or
				// errored under a stale view): redo it serially at the
				// commit point — exactly what a serial loop would see.
				recomputed++
				var cerr error
				enc, cerr = ComputeEncodingInto(topo, cfg, occ.CapacityFunc(), receivers(i), &commitScratch)
				if cerr != nil {
					occ.admit.Unlock()
					return recomputed, &BatchError{Index: i, Err: cerr}
				}
			}
			if cerr := commit(i, enc); cerr != nil {
				occ.admit.Unlock()
				return recomputed, &BatchError{Index: i, Err: cerr}
			}
			occ.Commit(enc)
			occ.admit.Unlock()
			results[i] = result{} // release speculative memory early
		}
	}
	return recomputed, nil
}

// BatchSpec is one group to install: its key and members with roles.
type BatchSpec struct {
	Key     GroupKey
	Members map[topology.HostID]Role
}

// BatchOptions tunes InstallBatch.
type BatchOptions struct {
	// Workers is the number of concurrent encoder workers; <=0 uses
	// GOMAXPROCS. The result is identical for every value.
	Workers int
}

// BatchResult reports what a bulk install did.
type BatchResult struct {
	// Installed counts groups committed (== len(specs) on success).
	Installed int
	// Recomputed counts encodings redone at the commit point because a
	// concurrent admission changed a capacity answer they relied on.
	Recomputed int
	// Workers is the effective worker count used.
	Workers int
}

// applyItem is one admitted group handed to a shard committer.
type applyItem struct {
	idx int
	g   *GroupState
}

// applyFlushSize batches admitted groups per shard before handing them
// to the shard's committer: one channel transfer and one shard-lock
// acquisition then cover the whole slice, keeping the sequencer's
// per-element cost to an append.
const applyFlushSize = 32

// applyQueueDepth bounds the per-shard apply queue (in slices). A full
// queue blocks the sequencer (which holds the admission mutex), but
// committers drain using only their shard lock, so progress is
// guaranteed.
const applyQueueDepth = 64

// InstallBatch creates all the given groups through the three-stage
// pipeline described at the top of this file: parallel speculative
// encoding, strict input-order s-rule admission, and per-shard parallel
// application of the group map and update-stat writes. The installed
// state — encodings, occupancy counters, update stats, trace events —
// is byte-identical to calling CreateGroup for each spec in slice
// order, for any worker count and any shard count. On error (duplicate
// or empty key roles, legacy table overflow) the batch stops with a
// *BatchError; specs before the failing index remain installed, exactly
// like the serial loop.
//
// InstallBatch is safe to run concurrently with other controller
// operations, but the byte-identical-to-serial guarantee holds only for
// a quiescent controller (no concurrent mutations admitting s-rules).
func (c *Controller) InstallBatch(specs []BatchSpec, opts BatchOptions) (*BatchResult, error) {
	workers := ResolveWorkers(opts.Workers)
	res := &BatchResult{Workers: workers}
	n := len(specs)
	m := c.getMetrics()
	// The sequencer runs on this goroutine only, so a plain local
	// carries the inter-commit latency baseline race-free.
	last := m.now()

	// The encode workers prepare each group's state alongside its
	// receiver list: prep[i] and prepErr[i] are written before the
	// element's ready signal (or, on the serial/recompute paths, by the
	// sequencer itself just before use), so the sequencer always reads
	// them after a happens-before edge. Rebuilding on a recompute is
	// idempotent.
	prep := make([]*GroupState, n)
	prepErr := make([]error, n)
	receivers := func(i int) []topology.HostID {
		spec := specs[i]
		g := &GroupState{Key: spec.Key, Members: make(map[topology.HostID]Role, len(spec.Members))}
		prepErr[i] = nil
		for h, r := range spec.Members {
			if r == 0 {
				prepErr[i] = fmt.Errorf("controller: host %d has empty role", h)
			}
			g.Members[h] = r
		}
		prep[i] = g
		return receiversOf(spec.Members)
	}

	// Per-shard apply committers (parallel path only): the sequencer
	// stays light and map/stat writes spread across shard locks.
	async := workers > 1 && n > 1
	var (
		queues    []chan []applyItem
		pending   [][]applyItem
		applyWG   sync.WaitGroup
		installed atomic.Int64
		applyErr  atomic.Pointer[BatchError]
	)
	applySlice := func(sh *ctrlShard, its []applyItem) {
		ok := 0
		sh.mu.Lock()
		for _, it := range its {
			if _, dup := sh.groups[it.g.Key]; dup {
				// Only reachable when an external create raced this
				// batch (in-batch duplicates are caught by the
				// sequencer): undo the admission charge and surface
				// the first conflict.
				c.occ.Release(it.g.Enc)
				be := &BatchError{Index: it.idx, Err: fmt.Errorf("controller: group %v already exists", it.g.Key)}
				applyErr.CompareAndSwap(nil, be)
				continue
			}
			sh.groups[it.g.Key] = it.g
			for h := range it.g.Members {
				sh.stats.Hypervisor[h]++
			}
			ok++
		}
		sh.mu.Unlock()
		installed.Add(int64(ok))
	}
	if async {
		queues = make([]chan []applyItem, len(c.shards))
		pending = make([][]applyItem, len(c.shards))
		for si := range queues {
			q := make(chan []applyItem, applyQueueDepth)
			queues[si] = q
			sh := c.shards[si]
			applyWG.Add(1)
			go func() {
				defer applyWG.Done()
				for its := range q {
					applySlice(sh, its)
				}
			}()
		}
	}
	drain := func() {
		if async {
			for si, q := range queues {
				if len(pending[si]) > 0 {
					q <- pending[si]
					pending[si] = nil
				}
				close(q)
			}
			applyWG.Wait()
		}
	}

	// seen tracks keys admitted by this batch (their inserts may still
	// be in flight on a shard queue); the shard map read covers groups
	// that existed before the batch.
	seen := make(map[GroupKey]struct{}, n)
	commit := func(i int, enc *Encoding) error {
		if err := prepErr[i]; err != nil {
			return err
		}
		key := specs[i].Key
		if _, dup := seen[key]; dup {
			return fmt.Errorf("controller: group %v already exists", key)
		}
		si := c.shardIndex(key)
		sh := c.shards[si]
		sh.mu.RLock()
		_, exists := sh.groups[key]
		sh.mu.RUnlock()
		if exists {
			return fmt.Errorf("controller: group %v already exists", key)
		}
		seen[key] = struct{}{}
		g := prep[i]
		g.Enc = enc
		it := applyItem{idx: i, g: g}
		if async {
			pending[si] = append(pending[si], it)
			if len(pending[si]) >= applyFlushSize {
				queues[si] <- pending[si]
				pending[si] = nil
			}
		} else {
			applySlice(sh, []applyItem{it})
		}
		c.traceEncode(key, enc)
		c.traceControl(trace.KindCreateGroup, key, int64(len(g.Members)), "")
		if m != nil {
			m.batchInstalled.Inc()
			now := time.Now()
			m.opLatency.install.Observe(now.Sub(last).Seconds())
			last = now
		}
		return nil
	}

	recomputed, err := EncodeBatch(c.topo, c.cfg, c.occ, n, workers, receivers, commit)
	drain()
	res.Recomputed = recomputed
	res.Installed = int(installed.Load())
	if m != nil && recomputed > 0 {
		m.batchRecompute.Add(int64(recomputed))
	}
	if err == nil {
		if be := applyErr.Load(); be != nil {
			err = be
		}
	}
	if err != nil {
		return res, fmt.Errorf("controller: install %w", err)
	}
	return res, nil
}

// receiversOf lists the receiving hosts of a member map, ascending —
// the same order GroupState.Receivers produces.
func receiversOf(members map[topology.HostID]Role) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(members))
	for h, r := range members {
		if r.CanReceive() {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}
