package controller

import (
	"sync"
	"sync/atomic"

	"elmo/internal/topology"
)

// Occupancy tracks s-rule group-table occupancy per physical switch
// with atomically-readable counters, so concurrent encoder workers can
// consult capacity without locks while a single committer (or a
// committer serialized by the controller lock) mutates the counts.
//
// The commit protocol is optimistic: workers compute encodings against
// a point-in-time read of the counters, recording every capacity answer
// they consumed (capRecorder); the committer admits encodings in a
// deterministic order, re-checking the recorded answers against the
// live counters and recomputing serially on any mismatch. The committed
// result is therefore byte-identical to a fully serial run regardless
// of worker count.
type Occupancy struct {
	topo     *topology.Topology
	capacity int

	// admit serializes admission transactions — validate (or
	// release→validate) followed by Commit — so capacity answers stay
	// exact when multiple committers run concurrently (per-shard batch
	// committers, churn retrees). It is held only around those few
	// atomic reads/writes and the rare serial recompute fallback,
	// never during speculative encoding, and it is the first lock of
	// the controller's stop-the-shards barrier (see shard.go).
	admit sync.Mutex

	leaf  []int64
	spine []int64
}

// NewOccupancy creates zeroed occupancy counters for a topology with
// the given per-switch group-table capacity (Fmax).
func NewOccupancy(topo *topology.Topology, capacity int) *Occupancy {
	return &Occupancy{
		topo:     topo,
		capacity: capacity,
		leaf:     make([]int64, topo.NumLeaves()),
		spine:    make([]int64, topo.NumSpines()),
	}
}

// Capacity returns the per-switch table capacity (Fmax).
func (o *Occupancy) Capacity() int { return o.capacity }

// LeafCount returns the live occupancy of a leaf switch.
func (o *Occupancy) LeafCount(l topology.LeafID) int {
	return int(atomic.LoadInt64(&o.leaf[l]))
}

// SpineCount returns the live occupancy of a physical spine switch.
func (o *Occupancy) SpineCount(s topology.SpineID) int {
	return int(atomic.LoadInt64(&o.spine[s]))
}

// leafFree reports whether leaf l has room for one more entry after
// discounting bias entries (entries about to be released, e.g. the old
// encoding a recompute replaces).
func (o *Occupancy) leafFree(l topology.LeafID, bias int) bool {
	return int(atomic.LoadInt64(&o.leaf[l]))-bias < o.capacity
}

// podFree reports whether every physical spine of pod p has room,
// discounting bias entries per spine (the logical-spine rule is
// replicated to each physical spine of the pod).
func (o *Occupancy) podFree(p topology.PodID, bias int) bool {
	for plane := 0; plane < o.topo.Config().SpinesPerPod; plane++ {
		if int(atomic.LoadInt64(&o.spine[o.topo.SpineAt(p, plane)]))-bias >= o.capacity {
			return false
		}
	}
	return true
}

// CapacityFunc returns an unbiased capacity view over the live
// counters, suitable for serial encoding at the commit point.
func (o *Occupancy) CapacityFunc() CapacityFunc {
	return CapacityFunc{
		Leaf: func(l topology.LeafID) bool { return o.leafFree(l, 0) },
		Pod:  func(p topology.PodID) bool { return o.podFree(p, 0) },
	}
}

// Commit charges an encoding's s-rules to the counters.
func (o *Occupancy) Commit(e *Encoding) {
	if e == nil {
		return
	}
	for l := range e.LeafSRules {
		atomic.AddInt64(&o.leaf[l], 1)
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < o.topo.Config().SpinesPerPod; plane++ {
			atomic.AddInt64(&o.spine[o.topo.SpineAt(p, plane)], 1)
		}
	}
}

// Release returns an encoding's s-rules to the counters.
func (o *Occupancy) Release(e *Encoding) {
	if e == nil {
		return
	}
	for l := range e.LeafSRules {
		atomic.AddInt64(&o.leaf[l], -1)
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < o.topo.Config().SpinesPerPod; plane++ {
			atomic.AddInt64(&o.spine[o.topo.SpineAt(p, plane)], -1)
		}
	}
}

// capRecorder wraps an Occupancy for one speculative encoding run. It
// memoizes every capacity answer handed to the encoder (so one run sees
// a consistent view, exactly as a serial run over unchanging counters
// would) and can later validate those answers against the live
// counters. A bias derived from the encoding being replaced makes the
// speculative view behave as if the old s-rules were already released,
// mirroring the serial release-then-recompute order.
type capRecorder struct {
	occ      *Occupancy
	leafBias map[topology.LeafID]int
	podBias  map[topology.PodID]int
	leafAns  map[topology.LeafID]bool
	podAns   map[topology.PodID]bool
}

// newCapRecorder builds a recorder; oldEnc (may be nil) contributes the
// release bias.
func newCapRecorder(occ *Occupancy, oldEnc *Encoding) *capRecorder {
	r := &capRecorder{
		occ:     occ,
		leafAns: make(map[topology.LeafID]bool),
		podAns:  make(map[topology.PodID]bool),
	}
	if oldEnc != nil {
		if len(oldEnc.LeafSRules) > 0 {
			r.leafBias = make(map[topology.LeafID]int, len(oldEnc.LeafSRules))
			for l := range oldEnc.LeafSRules {
				r.leafBias[l]++
			}
		}
		if len(oldEnc.SpineSRules) > 0 {
			r.podBias = make(map[topology.PodID]int, len(oldEnc.SpineSRules))
			for p := range oldEnc.SpineSRules {
				r.podBias[p]++
			}
		}
	}
	return r
}

// capacity returns the recording capacity view for the encoder run.
// Not safe for concurrent use — one recorder serves one encoding run on
// one goroutine.
func (r *capRecorder) capacity() CapacityFunc {
	return CapacityFunc{
		Leaf: func(l topology.LeafID) bool {
			if ans, ok := r.leafAns[l]; ok {
				return ans
			}
			ans := r.occ.leafFree(l, r.leafBias[l])
			r.leafAns[l] = ans
			return ans
		},
		Pod: func(p topology.PodID) bool {
			if ans, ok := r.podAns[p]; ok {
				return ans
			}
			ans := r.occ.podFree(p, r.podBias[p])
			r.podAns[p] = ans
			return ans
		},
	}
}

// valid re-evaluates every recorded answer against the live counters
// (unbiased — the caller must have released the old encoding first). If
// every answer still holds, the speculative encoding is exactly what a
// serial run at the commit point would produce.
func (r *capRecorder) valid() bool {
	for l, ans := range r.leafAns {
		if r.occ.leafFree(l, 0) != ans {
			return false
		}
	}
	for p, ans := range r.podAns {
		if r.occ.podFree(p, 0) != ans {
			return false
		}
	}
	return true
}
