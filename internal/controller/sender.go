package controller

import (
	"fmt"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// ErrNoPath reports that failures disconnected some receivers from a
// sender through every spine/core combination; the hypervisor should
// degrade to unicast for the group until repair (§3.3).
var ErrNoPath = fmt.Errorf("controller: no healthy upstream path covers all receivers")

// ErrLegacyPath reports that the sender sits behind a legacy (non-Elmo)
// leaf, or in a legacy pod while the group crosses pods, so its packets
// cannot be source-routed; the hypervisor degrades to unicast until the
// rack migrates (§7, path to deployment).
var ErrLegacyPath = fmt.Errorf("controller: sender is behind a legacy switch")

// ErrLegacyTableFull reports that a legacy switch on the group's tree
// has no group-table space left: legacy group tables remain the
// scalability bottleneck of partially migrated fabrics.
var ErrLegacyTableFull = fmt.Errorf("legacy switch group table full")

// SenderHeader assembles the Elmo header a hypervisor pushes for
// packets the given sender host emits into the group encoded by e.
//
// The downstream sections are shared across senders (D2c); this
// function specializes only the sender-dependent parts: the upstream
// leaf and spine rules, the core pod bitmap (excluding the sender's own
// pod, which is served on the way up), and the removal of downstream
// rules that exclusively name the sender's own leaf or pod.
//
// When failures is non-nil and affects the group's reachable paths,
// multipathing is disabled and explicit upstream ports are chosen by
// greedy set cover (§3.3); ErrNoPath is returned when no cover exists.
func SenderHeader(topo *topology.Topology, cfg Config, e *Encoding, sender topology.HostID, failures *topology.FailureSet) (*header.Header, error) {
	l := header.LayoutFor(topo)
	senderLeaf := topo.HostLeaf(sender)
	senderPod := topo.LeafPod(senderLeaf)

	for _, lg := range cfg.LegacyLeaves {
		if lg == senderLeaf {
			return nil, ErrLegacyPath
		}
	}

	h := &header.Header{}

	// Receivers under the sender's own leaf, minus the sender itself:
	// the hypervisor delivers any co-located member VM locally.
	uDown := bitmap.New(l.LeafDown)
	if lp, ok := e.LeafPorts[senderLeaf]; ok {
		uDown = lp.Clone()
		if uDown.Test(topo.HostPort(sender)) {
			uDown.Clear(topo.HostPort(sender))
		}
	}

	// Does the tree extend beyond the rack / beyond the pod?
	beyondRack := false
	for leaf := range e.LeafPorts {
		if leaf != senderLeaf {
			beyondRack = true
			break
		}
	}
	beyondPod := false
	for pod := range e.PodLeaves {
		if pod != senderPod {
			beyondPod = true
			break
		}
	}

	if uDown.IsEmpty() && !beyondRack {
		// Nothing to deliver outside the sender's own hypervisor.
		return h, nil
	}

	uleaf := &header.UpstreamRule{Down: uDown, Up: bitmap.New(l.LeafUp)}
	h.ULeaf = uleaf
	if !beyondRack {
		return h, nil
	}

	// Beyond the rack the packet must transit the sender pod's spines;
	// legacy spines cannot interpret the u-spine rule.
	for _, lg := range cfg.LegacyPods {
		if lg == senderPod {
			return nil, ErrLegacyPath
		}
	}

	// The packet must ascend. Build the u-spine rule: deliveries to
	// other member leaves of the sender's pod happen on the way up.
	uspine := &header.UpstreamRule{Down: bitmap.New(l.SpineDown), Up: bitmap.New(l.SpineUp)}
	if pl, ok := e.PodLeaves[senderPod]; ok {
		uspine.Down = pl.Clone()
		if uspine.Down.Test(topo.LeafIndexInPod(senderLeaf)) {
			uspine.Down.Clear(topo.LeafIndexInPod(senderLeaf))
		}
	}
	h.USpine = uspine

	if beyondPod {
		core := e.Pods.Clone()
		if core.Test(int(senderPod)) {
			core.Clear(int(senderPod))
		}
		h.Core = &core

		h.DSpine = filterRules(e.DSpine, uint16(senderPod))
		h.DSpineDefault = e.DSpineDefault
	}

	h.DLeaf = filterRules(e.DLeaf, uint16(senderLeaf))
	h.DLeafDefault = e.DLeafDefault

	// Upstream port selection: multipath when the fabric is healthy,
	// explicit set-cover ports under failures.
	if failures.Empty() || !groupAffected(topo, e, senderPod, failures) {
		uleaf.Multipath = true
		uspine.Multipath = beyondPod
	} else {
		planes, corePorts, err := coverUpstream(topo, e, senderPod, beyondPod, failures)
		if err != nil {
			return nil, err
		}
		for _, p := range planes {
			uleaf.Up.Set(p)
		}
		for _, j := range corePorts {
			uspine.Up.Set(j)
		}
	}

	h.INTEnabled = cfg.EnableINT

	if size := header.EncodedSize(l, h); size > cfg.MaxHeaderBytes {
		return nil, fmt.Errorf("controller: assembled header %d bytes exceeds budget %d", size, cfg.MaxHeaderBytes)
	}
	return h, nil
}

// filterRules drops rules that exclusively name the sender's own
// switch: the downstream path never revisits it, so carrying the rule
// only wastes header bytes.
func filterRules(rules []header.PRule, own uint16) []header.PRule {
	out := make([]header.PRule, 0, len(rules))
	for _, r := range rules {
		if len(r.Switches) == 1 && r.Switches[0] == own {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// groupAffected reports whether any failed switch lies on a path this
// group's packets could take from the sender's pod.
func groupAffected(topo *topology.Topology, e *Encoding, senderPod topology.PodID, f *topology.FailureSet) bool {
	cfg := topo.Config()
	for plane := 0; plane < cfg.SpinesPerPod; plane++ {
		if f.SpineFailed(topo.SpineAt(senderPod, plane)) {
			return true
		}
	}
	for pod := range e.PodLeaves {
		for plane := 0; plane < cfg.SpinesPerPod; plane++ {
			if f.SpineFailed(topo.SpineAt(pod, plane)) {
				return true
			}
		}
	}
	for c := 0; c < topo.NumCores(); c++ {
		if f.CoreFailed(topology.CoreID(c)) {
			return true
		}
	}
	return false
}

// coverUpstream chooses spine planes (u-leaf upstream ports) and core
// uplink ports (u-spine upstream ports) such that every receiver pod
// is reachable, greedily covering the most pods per plane (the same
// set-cover approach as PortLand, §3.3).
func coverUpstream(topo *topology.Topology, e *Encoding, senderPod topology.PodID, beyondPod bool, f *topology.FailureSet) (planes, corePorts []int, err error) {
	cfg := topo.Config()
	// Pods (other than the sender's) that must be reached via core.
	need := make(map[topology.PodID]bool)
	for pod := range e.PodLeaves {
		if pod != senderPod {
			need[pod] = true
		}
	}
	podHasOtherLeaves := false
	if _, ok := e.PodLeaves[senderPod]; ok {
		podHasOtherLeaves = true
	}

	type planeInfo struct {
		plane    int
		corePort int // healthy core uplink, -1 if none
		covers   []topology.PodID
	}
	candidates := make([]planeInfo, 0, cfg.SpinesPerPod)
	for plane := 0; plane < cfg.SpinesPerPod; plane++ {
		if f.SpineFailed(topo.SpineAt(senderPod, plane)) {
			continue
		}
		pi := planeInfo{plane: plane, corePort: -1}
		for j := 0; j < cfg.CoresPerPlane; j++ {
			if !f.CoreFailed(topology.CoreID(plane*cfg.CoresPerPlane + j)) {
				pi.corePort = j
				break
			}
		}
		if pi.corePort >= 0 {
			for pod := range need {
				if !f.SpineFailed(topo.SpineAt(pod, plane)) {
					pi.covers = append(pi.covers, pod)
				}
			}
		}
		candidates = append(candidates, pi)
	}
	if len(candidates) == 0 {
		return nil, nil, ErrNoPath
	}
	if !beyondPod {
		// Any healthy spine of the sender's pod reaches its leaves.
		return []int{candidates[0].plane}, nil, nil
	}
	uncovered := need
	for len(uncovered) > 0 {
		best := -1
		bestCover := 0
		for i, pi := range candidates {
			n := 0
			for _, pod := range pi.covers {
				if uncovered[pod] {
					n++
				}
			}
			if n > bestCover {
				best, bestCover = i, n
			}
		}
		if best == -1 {
			return nil, nil, ErrNoPath
		}
		planes = append(planes, candidates[best].plane)
		corePorts = appendUnique(corePorts, candidates[best].corePort)
		for _, pod := range candidates[best].covers {
			delete(uncovered, pod)
		}
		candidates[best].covers = nil
	}
	// If the sender's pod also has receiver leaves, the first chosen
	// plane's spine delivers them; a plane was always chosen because
	// beyondPod implies at least one uncovered pod existed.
	_ = podHasOtherLeaves
	return planes, corePorts, nil
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
