package controller

import (
	"testing"

	"elmo/internal/topology"
)

func TestInspectGroupsAndShards(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	c, err := New(topo, PaperConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(g uint32, hosts ...topology.HostID) GroupKey {
		key := GroupKey{Tenant: 1, Group: g}
		members := make(map[topology.HostID]Role, len(hosts))
		for _, h := range hosts {
			members[h] = RoleBoth
		}
		if _, err := c.CreateGroup(key, members); err != nil {
			t.Fatal(err)
		}
		return key
	}
	mk(1, 0, 1, 40)
	mk(2, 2, 3)
	mk(3, 0, 63)

	groups, total := c.InspectGroups(0)
	if total != 3 || len(groups) != 3 {
		t.Fatalf("InspectGroups: total=%d len=%d", total, len(groups))
	}
	// Sorted by (vni, group), summaries coherent with membership.
	for i, g := range groups {
		if g.Group != uint32(i+1) {
			t.Fatalf("order wrong at %d: %+v", i, g)
		}
		if g.Senders != g.Members || g.Receivers != g.Members {
			t.Fatalf("RoleBoth group has sender/receiver mismatch: %+v", g)
		}
	}
	if groups[0].Members != 3 || groups[1].Members != 2 {
		t.Fatalf("member counts wrong: %+v", groups[:2])
	}
	// Limit truncates after sorting.
	if limited, total := c.InspectGroups(2); total != 3 || len(limited) != 2 || limited[1].Group != 2 {
		t.Fatalf("limited inspect wrong: total=%d %+v", total, limited)
	}

	d, ok := c.InspectGroup(GroupKey{Tenant: 1, Group: 1})
	if !ok {
		t.Fatal("group 1 not found")
	}
	if len(d.MemberList) != 3 || d.MemberList[0].Host != 0 || d.MemberList[0].Role != "both" {
		t.Fatalf("member list wrong: %+v", d.MemberList)
	}
	if len(d.Tree) == 0 || len(d.Encoding.Pods) == 0 {
		t.Fatalf("tree/encoding empty: %+v", d)
	}
	// All three members can send; each gets a positive header size.
	if len(d.Headers) != 3 {
		t.Fatalf("headers: %+v", d.Headers)
	}
	for _, h := range d.Headers {
		if h.Bytes <= 0 || h.Err != "" {
			t.Fatalf("header for sender %d: %+v", h.Sender, h)
		}
	}
	// Receiver ports in the tree cover exactly the member hosts.
	ports := 0
	for _, tl := range d.Tree {
		ports += len(tl.Ports)
	}
	if ports != 3 {
		t.Fatalf("tree covers %d ports, want 3", ports)
	}

	if _, ok := c.InspectGroup(GroupKey{Tenant: 9, Group: 9}); ok {
		t.Fatal("phantom group found")
	}

	info := c.InspectShards()
	if len(info.Shards) != c.NumShards() || info.TotalGroups != 3 {
		t.Fatalf("shard info wrong: %+v", info)
	}
	sum := 0
	for _, sh := range info.Shards {
		sum += sh.Groups
	}
	if sum != info.TotalGroups {
		t.Fatalf("shard sum %d != total %d", sum, info.TotalGroups)
	}
	if info.HypervisorUpdates == 0 {
		t.Fatalf("no hypervisor updates recorded: %+v", info)
	}
}
