package controller

import (
	"sort"

	"elmo/internal/header"
	"elmo/internal/topology"
)

// Live introspection: read-only snapshots of the controller's state
// for the ops plane (internal/obs). Cross-shard views reuse the
// stop-the-shards read barrier (rlockAllShards), so a snapshot is a
// consistent cut — no group is half-installed or counted in two
// shards, and per-shard group counts always sum to the reported
// total. Single-group views take only the owning shard's read lock
// (GroupState fields are written under the shard write lock, so the
// read lock suffices).

// GroupSummary is one group's topline for /debug/elmo/groups.
type GroupSummary struct {
	VNI        uint32 `json:"vni"`
	Group      uint32 `json:"group"`
	Members    int    `json:"members"`
	Senders    int    `json:"senders"`
	Receivers  int    `json:"receivers"`
	Exact      bool   `json:"exact"`
	UsesSRules bool   `json:"uses_srules"`
	Redundancy int    `json:"redundancy"`
}

// MemberInfo is one member with its role, for the group detail view.
type MemberInfo struct {
	Host topology.HostID `json:"host"`
	Role string          `json:"role"`
}

// TreeLeaf is one receiver leaf of the group's multicast tree.
type TreeLeaf struct {
	Leaf  topology.LeafID `json:"leaf"`
	Pod   topology.PodID  `json:"pod"`
	Ports []int           `json:"ports"`
}

// EncodingInfo breaks down how the group's tree is encoded: p-rules
// carried in the packet header versus s-rules installed in switch
// group tables, defaults, and the redundancy (spurious transmissions)
// the sharing introduced.
type EncodingInfo struct {
	Pods            []int `json:"pods"`
	SpinePRules     int   `json:"spine_prules"`
	LeafPRules      int   `json:"leaf_prules"`
	SpineDefault    bool  `json:"spine_default"`
	LeafDefault     bool  `json:"leaf_default"`
	SpineSRules     int   `json:"spine_srules"`
	LeafSRules      int   `json:"leaf_srules"`
	Redundancy      int   `json:"redundancy"`
	LeafRedundancy  int   `json:"leaf_redundancy"`
	SpineRedundancy int   `json:"spine_redundancy"`
}

// SenderHeaderInfo is the assembled header size for one sender.
type SenderHeaderInfo struct {
	Sender topology.HostID `json:"sender"`
	Bytes  int             `json:"bytes"`
	Err    string          `json:"err,omitempty"`
}

// GroupDetail is the full group view for /debug/elmo/group/{id}.
type GroupDetail struct {
	GroupSummary
	MemberList []MemberInfo       `json:"member_list"`
	Tree       []TreeLeaf         `json:"tree"`
	Encoding   EncodingInfo       `json:"encoding"`
	Headers    []SenderHeaderInfo `json:"headers"`
}

// ShardInfo is one shard's footprint for /debug/elmo/controller.
type ShardInfo struct {
	Index   int `json:"index"`
	Groups  int `json:"groups"`
	Updates int `json:"updates"`
}

// ControllerInfo is the controller-wide view: per-shard stats plus
// aggregate rule-update counters, all from one consistent cut.
type ControllerInfo struct {
	Shards            []ShardInfo `json:"shards"`
	TotalGroups       int         `json:"total_groups"`
	HypervisorUpdates int         `json:"hypervisor_updates"`
	LeafUpdates       int         `json:"leaf_updates"`
	SpineUpdates      int         `json:"spine_updates"`
	CoreUpdates       int         `json:"core_updates"`
}

func roleString(r Role) string {
	switch {
	case r.CanSend() && r.CanReceive():
		return "both"
	case r.CanSend():
		return "sender"
	case r.CanReceive():
		return "receiver"
	default:
		return "none"
	}
}

// summarize builds a GroupSummary from a group the caller has locked.
func summarize(g *GroupState) GroupSummary {
	s := GroupSummary{VNI: g.Key.Tenant, Group: g.Key.Group, Members: len(g.Members)}
	for _, r := range g.Members {
		if r.CanSend() {
			s.Senders++
		}
		if r.CanReceive() {
			s.Receivers++
		}
	}
	if g.Enc != nil {
		s.Exact = g.Enc.Exact()
		s.UsesSRules = g.Enc.UsesSRules()
		s.Redundancy = g.Enc.Redundancy
	}
	return s
}

// InspectGroups returns summaries for up to limit groups (0 = all) in
// ascending (vni, group) order, plus the total live-group count, from
// one consistent cross-shard cut.
func (c *Controller) InspectGroups(limit int) (groups []GroupSummary, total int) {
	c.rlockAllShards()
	for _, sh := range c.shards {
		total += len(sh.groups)
		for _, g := range sh.groups {
			groups = append(groups, summarize(g))
		}
	}
	c.runlockAllShards()
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].VNI != groups[j].VNI {
			return groups[i].VNI < groups[j].VNI
		}
		return groups[i].Group < groups[j].Group
	})
	if limit > 0 && len(groups) > limit {
		groups = groups[:limit]
	}
	return groups, total
}

// InspectGroup returns the full detail for one group, or false if it
// does not exist. Header sizes are assembled per sender with the live
// failure set, exactly as HeaderFor would.
func (c *Controller) InspectGroup(key GroupKey) (*GroupDetail, bool) {
	sh := c.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g, ok := sh.groups[key]
	if !ok {
		return nil, false
	}
	d := &GroupDetail{GroupSummary: summarize(g)}
	for h, r := range g.Members {
		d.MemberList = append(d.MemberList, MemberInfo{Host: h, Role: roleString(r)})
	}
	sort.Slice(d.MemberList, func(i, j int) bool { return d.MemberList[i].Host < d.MemberList[j].Host })
	e := g.Enc
	if e != nil {
		d.Encoding = EncodingInfo{
			Pods:            e.Pods.Ports(),
			SpinePRules:     len(e.DSpine),
			LeafPRules:      len(e.DLeaf),
			SpineDefault:    e.DSpineDefault != nil,
			LeafDefault:     e.DLeafDefault != nil,
			Redundancy:      e.Redundancy,
			LeafRedundancy:  e.LeafRedundancy,
			SpineRedundancy: e.SpineRedundancy,
		}
		for _, bm := range e.SpineSRules {
			d.Encoding.SpineSRules += bm.PopCount()
		}
		for _, bm := range e.LeafSRules {
			d.Encoding.LeafSRules += bm.PopCount()
		}
		for leaf, ports := range e.LeafPorts {
			d.Tree = append(d.Tree, TreeLeaf{Leaf: leaf, Pod: c.topo.LeafPod(leaf), Ports: ports.Ports()})
		}
		sort.Slice(d.Tree, func(i, j int) bool { return d.Tree[i].Leaf < d.Tree[j].Leaf })
		layout := header.LayoutFor(c.topo)
		for _, h := range d.MemberList {
			if h.Role != "sender" && h.Role != "both" {
				continue
			}
			info := SenderHeaderInfo{Sender: h.Host}
			hdr, err := SenderHeader(c.topo, c.cfg, e, h.Host, c.failures)
			if err != nil {
				info.Err = err.Error()
			} else {
				info.Bytes = header.EncodedSize(layout, hdr)
			}
			d.Headers = append(d.Headers, info)
		}
	}
	return d, true
}

// InspectShards returns the per-shard group and update counts plus the
// aggregate update totals, from one consistent cross-shard cut.
func (c *Controller) InspectShards() ControllerInfo {
	info := ControllerInfo{}
	c.rlockAllShards()
	for i, sh := range c.shards {
		si := ShardInfo{Index: i, Groups: len(sh.groups), Updates: sh.stats.Total()}
		info.Shards = append(info.Shards, si)
		info.TotalGroups += si.Groups
		for _, v := range sh.stats.Hypervisor {
			info.HypervisorUpdates += v
		}
		for _, v := range sh.stats.Leaf {
			info.LeafUpdates += v
		}
		for _, v := range sh.stats.Spine {
			info.SpineUpdates += v
		}
		info.CoreUpdates += sh.stats.Core
	}
	c.runlockAllShards()
	return info
}
