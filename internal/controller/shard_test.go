package controller

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"elmo/internal/topology"
)

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 200: 256, 1000: 256}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConfigShardsValidate(t *testing.T) {
	cfg := testConfig(0)
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	cfg.Shards = 5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := New(paperTopo(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumShards(); got != 8 {
		t.Fatalf("NumShards() = %d, want 8 (5 rounded up)", got)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Fatalf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Fatalf("ResolveWorkers(0) = %d, want >= 1", got)
	}
	if ResolveWorkers(0) != ResolveWorkers(-1) {
		t.Fatal("ResolveWorkers(0) != ResolveWorkers(-1)")
	}
}

// TestShardRoutingCoversAllShards checks the key hash actually spreads
// sequential group indices (the common allocation pattern) across every
// shard rather than clumping.
func TestShardRoutingCoversAllShards(t *testing.T) {
	cfg := testConfig(0)
	cfg.Shards = 8
	c, err := New(paperTopo(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[uint32]int)
	for g := uint32(1); g <= 256; g++ {
		hit[c.shardIndex(GroupKey{Tenant: 7, Group: g})]++
	}
	if len(hit) != 8 {
		t.Fatalf("256 sequential keys hit %d/8 shards: %v", len(hit), hit)
	}
	for si, n := range hit {
		if n < 8 {
			t.Fatalf("shard %d got only %d/256 keys: %v", si, n, hit)
		}
	}
}

// TestInstallBatchParityAcrossShards is the tentpole parity matrix: the
// committed state must be byte-identical (fingerprint-equal) to the
// serial single-shard run for every worker count in 1..8 crossed with
// every shard count in {1,2,4,8}, under a deliberately tight s-rule
// capacity so speculative encodings race capacity boundaries.
func TestInstallBatchParityAcrossShards(t *testing.T) {
	topo := paperTopo()
	base := testConfig(1)
	base.SRuleCapacity = 2
	specs := randSpecs(7, 120, 42, topo.NumHosts())

	ref, err := New(topo, func() Config { c := base; c.Shards = 1; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InstallBatch(specs, BatchOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	for _, shards := range []int{1, 2, 4, 8} {
		for workers := 1; workers <= 8; workers++ {
			cfg := base
			cfg.Shards = shards
			c, err := New(topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.InstallBatch(specs, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if res.Installed != len(specs) {
				t.Fatalf("shards=%d workers=%d: installed %d, want %d", shards, workers, res.Installed, len(specs))
			}
			label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			if got := c.Fingerprint(); got != want {
				t.Errorf("%s: fingerprint %s, want %s", label, got, want)
			}
			requireSameState(t, label, ref, c)
		}
	}
}

// TestStatsDeepCopy is the regression test for the Stats() aliasing
// bug: the returned snapshot must be fully detached from live state, so
// mutating the controller afterwards (or concurrently — run under
// -race) never changes or races with an already-taken snapshot.
func TestStatsDeepCopy(t *testing.T) {
	topo := paperTopo()
	c, err := New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 1, Group: 1}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleBoth, 8: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	snap := c.Stats()
	before := snap.Hypervisor[0]

	// Writers mutate stats while readers hold and re-read old snapshots:
	// -race proves the snapshot shares no memory with live state.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			h := topology.HostID(16 + i%8)
			c.Join(key, h, RoleReceiver)
			c.Leave(key, h, RoleReceiver)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := c.Stats()
			s.Hypervisor[0]++ // scribbling on a snapshot must be harmless
			s.Core++
			snap.Total()
		}
	}()
	wg.Wait()

	// The snapshot predates all churn: under the old aliasing contract
	// the retrees above would have mutated it in place (host 0 is a
	// sender, so every retree recharges its hypervisor).
	if snap.Hypervisor[0] != before {
		t.Fatalf("snapshot mutated through live state: %d, want %d", snap.Hypervisor[0], before)
	}
	// And writes to a snapshot never reach live state.
	s1 := c.Stats()
	s1.Hypervisor[0] += 1000
	s1.Core += 7
	s2 := c.Stats()
	if s2.Hypervisor[0] == s1.Hypervisor[0] || s2.Core != 0 {
		t.Fatalf("snapshot writes visible in live stats: %+v", s2)
	}
}

// TestCrossShardConsistencySoak (satellite: run under -race via `make
// race`) hammers a 4-shard controller with concurrent InstallBatch,
// scripted Join/Leave churn, and cross-shard readers (Stats,
// Fingerprint, Snapshot, GroupKeys), then asserts the final fingerprint
// equals a serial replay. Capacity is ample so encodings are
// independent of admission interleaving and the serial replay is the
// unique correct outcome.
func TestCrossShardConsistencySoak(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(1)
	cfg.SRuleCapacity = 10000
	cfg.Shards = 4
	numHosts := topo.NumHosts()

	baseSpecs := randSpecs(1, 32, 21, numHosts)
	batchA := randSpecs(10, 80, 22, numHosts)
	batchB := randSpecs(11, 80, 23, numHosts)

	// Scripted per-group op sequences: joins followed by leaves of a
	// subset of those joins, so every Leave targets a held role and the
	// per-group trajectory is deterministic under partitioned replay.
	type churnOp struct {
		join bool
		host topology.HostID
	}
	ops := make([][]churnOp, len(baseSpecs))
	rng := rand.New(rand.NewSource(24))
	for i, s := range baseSpecs {
		joined := make(map[topology.HostID]bool)
		for j := 0; j < 10; j++ {
			h := topology.HostID(rng.Intn(numHosts))
			if _, already := s.Members[h]; already || joined[h] {
				continue
			}
			joined[h] = true
			ops[i] = append(ops[i], churnOp{join: true, host: h})
			if j%3 == 0 {
				ops[i] = append(ops[i], churnOp{join: false, host: h})
				delete(joined, h)
			}
		}
	}

	run := func(c *Controller, concurrent bool) {
		t.Helper()
		for _, s := range baseSpecs {
			if _, err := c.CreateGroup(s.Key, s.Members); err != nil {
				t.Fatal(err)
			}
		}
		applyChurn := func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				for _, op := range ops[i] {
					var err error
					if op.join {
						err = c.Join(baseSpecs[i].Key, op.host, RoleReceiver)
					} else {
						err = c.Leave(baseSpecs[i].Key, op.host, RoleReceiver)
					}
					if err != nil {
						return fmt.Errorf("churn group %d host %d join=%t: %w", i, op.host, op.join, err)
					}
				}
			}
			return nil
		}
		if !concurrent {
			if err := applyChurn(0, len(ops)); err != nil {
				t.Fatal(err)
			}
			for _, b := range [][]BatchSpec{batchA, batchB} {
				if _, err := c.InstallBatch(b, BatchOptions{Workers: 1}); err != nil {
					t.Fatal(err)
				}
			}
			return
		}
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InstallBatch(batchA, BatchOptions{Workers: 4})
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InstallBatch(batchB, BatchOptions{Workers: 2})
			errs <- err
		}()
		mid := len(ops) / 2
		wg.Add(2)
		go func() { defer wg.Done(); errs <- applyChurn(0, mid) }()
		go func() { defer wg.Done(); errs <- applyChurn(mid, len(ops)) }()

		// Cross-shard readers race everything: consistent-cut operations
		// (Stats, Fingerprint, Snapshot) interleave with per-shard reads.
		stopReaders := make(chan struct{})
		var readers sync.WaitGroup
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				c.Stats()
				c.Fingerprint()
				c.Snapshot()
				c.GroupKeys()
				c.NumGroups()
				for _, s := range baseSpecs[:4] {
					for h, r := range s.Members {
						if r.CanSend() {
							c.HeaderFor(s.Key, h)
						}
					}
				}
			}
		}()
		wg.Wait()
		close(stopReaders)
		readers.Wait()
		for i := 0; i < 4; i++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}

	serial, err := New(topo, func() Config { c := cfg; c.Shards = 1; return c }())
	if err != nil {
		t.Fatal(err)
	}
	run(serial, false)
	soak, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(soak, true)

	if sf, cf := serial.Fingerprint(), soak.Fingerprint(); sf != cf {
		t.Fatalf("soak fingerprint %s, want serial %s", cf, sf)
	}
	if !reflect.DeepEqual(serial.Stats(), soak.Stats()) {
		t.Fatal("soak stats differ from serial replay")
	}
	requireSameState(t, "soak vs serial", serial, soak)
}
