package controller

import (
	"fmt"
	"math/bits"

	"elmo/internal/header"
	"elmo/internal/topology"
)

// This file quantifies the paper's §3.1 design decisions D1–D3 on a
// concrete group, reproducing the running example's header-size
// narrative (161 bits per-switch → 83 bits on the logical topology →
// 62 bits with bitmap sharing). The models follow the paper's
// accounting: identifiers cost ceil(log2(#switches of the tier)) bits
// and bitmaps cost one bit per port; byte alignment and section
// framing are ignored, as in the paper's arithmetic.

// AblationSizes reports header bits for one (group, sender) pair under
// successive design stages.
type AblationSizes struct {
	// D1Bits: one rule per physical switch on the multicast tree, each
	// carrying its identifier and its full port bitmap (upstream +
	// downstream ports for leaf/spine tiers).
	D1Bits int
	// D2Bits: encoding on the logical topology — bitmap-only upstream
	// rules with a multipath flag, one rule per logical spine (pod)
	// and per leaf, a single logical-core bitmap, sender-specific
	// trimming.
	D2Bits int
	// D3Bits: D2 plus bitmap sharing across switches (the configured
	// R/KMax), i.e. the encoding Elmo actually emits.
	D3Bits int
}

// Ablation computes the stage sizes for a receiver set and sender.
func Ablation(topo *topology.Topology, cfg Config, receivers []topology.HostID, sender topology.HostID) (AblationSizes, error) {
	var out AblationSizes
	enc, err := ComputeEncoding(topo, cfg, NoCapacity(), receivers)
	if err != nil {
		return out, err
	}

	// --- D1: per-physical-switch rules. ---
	tcfg := topo.Config()
	leafID := bitlen(topo.NumLeaves())
	spineID := bitlen(topo.NumSpines())
	coreID := bitlen(topo.NumCores())
	leafPorts := tcfg.HostsPerLeaf + tcfg.SpinesPerPod
	spinePorts := tcfg.LeavesPerPod + tcfg.CoresPerPlane
	corePorts := tcfg.Pods
	// Every member leaf, every physical spine of every member pod, and
	// every core can appear on some sender's tree; D1 encodes them all.
	out.D1Bits = len(enc.LeafPorts)*(leafID+leafPorts) +
		len(enc.PodLeaves)*tcfg.SpinesPerPod*(spineID+spinePorts) +
		topo.NumCores()*(coreID+corePorts)

	// --- D2: logical topology, no sharing. ---
	// Sender-specific upstream rules (bitmap + multipath flag, no IDs).
	senderLeaf := topo.HostLeaf(sender)
	senderPod := topo.LeafPod(senderLeaf)
	d2 := (tcfg.HostsPerLeaf + tcfg.SpinesPerPod + 1) + // u-leaf
		(tcfg.LeavesPerPod + tcfg.CoresPerPlane + 1) // u-spine
	d2 += tcfg.Pods // logical core bitmap
	podBits := bitlen(tcfg.Pods)
	for pod := range enc.PodLeaves {
		if pod == senderPod {
			continue // served by the u-spine rule
		}
		d2 += podBits + tcfg.LeavesPerPod
	}
	for leaf := range enc.LeafPorts {
		if leaf == senderLeaf && len(enc.LeafPorts) == 1 {
			continue
		}
		d2 += leafID + tcfg.HostsPerLeaf
	}
	out.D2Bits = d2

	// --- D3: the real encoding (sharing per cfg), same bit accounting. ---
	h, err := SenderHeader(topo, cfg, enc, sender, nil)
	if err != nil {
		return out, err
	}
	d3 := 0
	if h.ULeaf != nil {
		d3 += tcfg.HostsPerLeaf + tcfg.SpinesPerPod + 1
	}
	if h.USpine != nil {
		d3 += tcfg.LeavesPerPod + tcfg.CoresPerPlane + 1
	}
	if h.Core != nil {
		d3 += tcfg.Pods
	}
	for _, r := range h.DSpine {
		d3 += len(r.Switches)*podBits + tcfg.LeavesPerPod
	}
	if h.DSpineDefault != nil {
		d3 += tcfg.LeavesPerPod
	}
	for _, r := range h.DLeaf {
		d3 += len(r.Switches)*leafID + tcfg.HostsPerLeaf
	}
	if h.DLeafDefault != nil {
		d3 += tcfg.HostsPerLeaf
	}
	out.D3Bits = d3
	return out, nil
}

func bitlen(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// NoPopBytes models disabling D2d (popping): every link transmission
// carries the full source header. Compare with Delivery.LinkBytes to
// quantify what per-hop popping saves.
func NoPopBytes(links, innerLen, sourceStreamLen int) int {
	return links * (header.OuterSize + innerLen + sourceStreamLen)
}

// String renders the stages.
func (a AblationSizes) String() string {
	return fmt.Sprintf("D1(per-switch)=%d bits, D2(logical)=%d bits, D3(shared)=%d bits", a.D1Bits, a.D2Bits, a.D3Bits)
}
