package controller

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// randSpecs builds n deterministic group specs over numHosts hosts.
// Every group has at least one receiver and one sender.
func randSpecs(tenant uint32, n int, seed int64, numHosts int) []BatchSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]BatchSpec, n)
	for i := range specs {
		size := 2 + rng.Intn(10)
		members := make(map[topology.HostID]Role, size)
		first := topology.HostID(rng.Intn(numHosts))
		members[first] = RoleBoth
		for len(members) < size {
			h := topology.HostID(rng.Intn(numHosts))
			if _, ok := members[h]; ok {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				members[h] = RoleSender
			case 1:
				members[h] = RoleReceiver
			default:
				members[h] = RoleBoth
			}
		}
		specs[i] = BatchSpec{Key: GroupKey{Tenant: tenant, Group: uint32(i + 1)}, Members: members}
	}
	return specs
}

// occSnapshot reads the full occupancy vectors.
func occSnapshot(c *Controller) ([]int, []int) {
	topo := c.Topology()
	leaves := make([]int, topo.NumLeaves())
	for l := range leaves {
		leaves[l] = c.LeafSRuleCount(topology.LeafID(l))
	}
	spines := make([]int, topo.NumSpines())
	for s := range spines {
		spines[s] = c.SpineSRuleCount(topology.SpineID(s))
	}
	return leaves, spines
}

// encSnapshot collects every group's encoding.
func encSnapshot(c *Controller) map[GroupKey]*Encoding {
	out := make(map[GroupKey]*Encoding)
	for _, k := range c.GroupKeys() {
		out[k] = c.Group(k).Enc
	}
	return out
}

// requireSameState asserts two controllers hold byte-identical group
// encodings, occupancy and update stats.
func requireSameState(t *testing.T, label string, want, got *Controller) {
	t.Helper()
	wantEnc, gotEnc := encSnapshot(want), encSnapshot(got)
	if len(wantEnc) != len(gotEnc) {
		t.Fatalf("%s: %d groups, want %d", label, len(gotEnc), len(wantEnc))
	}
	for k, we := range wantEnc {
		ge, ok := gotEnc[k]
		if !ok {
			t.Fatalf("%s: group %v missing", label, k)
		}
		if !reflect.DeepEqual(we, ge) {
			t.Fatalf("%s: group %v encoding differs:\nwant %+v\ngot  %+v", label, k, we, ge)
		}
	}
	wl, ws := occSnapshot(want)
	gl, gs := occSnapshot(got)
	if !reflect.DeepEqual(wl, gl) {
		t.Fatalf("%s: leaf occupancy %v, want %v", label, gl, wl)
	}
	if !reflect.DeepEqual(ws, gs) {
		t.Fatalf("%s: spine occupancy %v, want %v", label, gs, ws)
	}
	if !reflect.DeepEqual(want.Stats(), got.Stats()) {
		t.Fatalf("%s: stats differ:\nwant %+v\ngot  %+v", label, want.Stats(), got.Stats())
	}
}

// TestInstallBatchDeterministicAcrossWorkers runs the same batch with a
// deliberately tight s-rule capacity (so speculative encodings race
// capacity boundaries and get recomputed) and asserts the committed
// state is byte-identical for every worker count.
func TestInstallBatchDeterministicAcrossWorkers(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(1)
	cfg.SRuleCapacity = 2 // tight: forces contention on the shared counters
	specs := randSpecs(7, 200, 42, topo.NumHosts())

	var base *Controller
	for _, workers := range []int{1, 2, 3, 4, 8} {
		c, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.InstallBatch(specs, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Installed != len(specs) {
			t.Fatalf("workers=%d: installed %d, want %d", workers, res.Installed, len(specs))
		}
		if workers == 1 {
			if res.Recomputed != 0 {
				t.Fatalf("serial path recomputed %d", res.Recomputed)
			}
			base = c
			continue
		}
		requireSameState(t, fmt.Sprintf("workers=%d", workers), base, c)
	}
}

// TestInstallBatchMatchesSerialCreateGroup asserts a parallel batch is
// indistinguishable from calling CreateGroup per spec in order —
// encodings, occupancy, stats, and sender headers.
func TestInstallBatchMatchesSerialCreateGroup(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(1)
	cfg.SRuleCapacity = 3
	specs := randSpecs(3, 150, 99, topo.NumHosts())

	serial, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if _, err := serial.CreateGroup(s.Key, s.Members); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.InstallBatch(specs, BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "batch vs serial", serial, batch)

	// Headers come out identical too.
	for _, s := range specs[:20] {
		for h, r := range s.Members {
			if !r.CanSend() {
				continue
			}
			hw, err1 := serial.HeaderFor(s.Key, h)
			hb, err2 := batch.HeaderFor(s.Key, h)
			if err1 != nil || err2 != nil {
				t.Fatalf("HeaderFor(%v, %d): %v / %v", s.Key, h, err1, err2)
			}
			if !reflect.DeepEqual(hw, hb) {
				t.Fatalf("header differs for %v sender %d", s.Key, h)
			}
		}
	}
}

// TestInstallBatchDuplicateKey checks that a failing element stops the
// batch with a *BatchError carrying its index, leaving all earlier
// elements committed exactly like the serial loop would.
func TestInstallBatchDuplicateKey(t *testing.T) {
	topo := paperTopo()
	specs := randSpecs(5, 30, 7, topo.NumHosts())
	specs[17].Key = specs[4].Key // duplicate mid-batch

	c, err := New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.InstallBatch(specs, BatchOptions{Workers: 4})
	if err == nil {
		t.Fatal("expected duplicate-key error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BatchError", err)
	}
	if be.Index != 17 {
		t.Fatalf("failing index %d, want 17", be.Index)
	}
	if got := c.NumGroups(); got != 17 {
		t.Fatalf("%d groups committed, want 17", got)
	}
	// The committed prefix matches a serial replay of specs[:17].
	serial, err := New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs[:17] {
		if _, err := serial.CreateGroup(s.Key, s.Members); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, "prefix", serial, c)
}

func TestInstallBatchEmpty(t *testing.T) {
	c, err := New(paperTopo(), testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.InstallBatch(nil, BatchOptions{Workers: 8})
	if err != nil || res.Installed != 0 {
		t.Fatalf("empty batch: res=%+v err=%v", res, err)
	}
}

// traceKinds extracts the control-event kinds for a group key.
func traceKinds(rec *trace.FlightRecorder, key GroupKey) []trace.Kind {
	var kinds []trace.Kind
	for _, ev := range rec.Snapshot() {
		if ev.Cat == trace.CatControl && ev.VNI == key.Tenant && ev.Group == key.Group {
			kinds = append(kinds, ev.Kind)
		}
	}
	return kinds
}

// TestJoinRollbackAccounting is the regression test for the rollback
// accounting bug: a Join whose retree fails (legacy leaf table full)
// must leave the member's hypervisor counter uncharged, revert the
// membership, keep the old encoding and occupancy, and emit only the
// rollback trace event — no Join event.
func TestJoinRollbackAccounting(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.SRuleCapacity = 1
	cfg.LegacyLeaves = []topology.LeafID{0} // leaf 0 must use s-rules
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(trace.Config{})
	rec.Enable(trace.CatControl)
	c.SetTracer(rec)

	// Group A owns leaf 0's single table slot.
	keyA := GroupKey{Tenant: 1, Group: 1}
	if _, err := c.CreateGroup(keyA, map[topology.HostID]Role{0: RoleBoth, 8: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	// Group B has no leaf-0 receivers.
	keyB := GroupKey{Tenant: 1, Group: 2}
	gb, err := c.CreateGroup(keyB, map[topology.HostID]Role{16: RoleBoth, 17: RoleReceiver})
	if err != nil {
		t.Fatal(err)
	}
	oldEnc := gb.Enc
	leavesBefore, spinesBefore := occSnapshot(c)
	hypBefore := c.Stats().Hypervisor[2]

	// Joining a leaf-0 receiver needs a legacy s-rule there — table full.
	if err := c.Join(keyB, 2, RoleReceiver); !errors.Is(err, ErrLegacyTableFull) {
		t.Fatalf("Join error = %v, want ErrLegacyTableFull", err)
	}

	if got := c.Stats().Hypervisor[2]; got != hypBefore {
		t.Fatalf("hypervisor 2 charged %d updates for a rolled-back join", got-hypBefore)
	}
	if _, ok := gb.Members[2]; ok {
		t.Fatal("membership not reverted after failed join")
	}
	if gb.Enc != oldEnc {
		t.Fatal("encoding replaced despite rollback")
	}
	leavesAfter, spinesAfter := occSnapshot(c)
	if !reflect.DeepEqual(leavesBefore, leavesAfter) || !reflect.DeepEqual(spinesBefore, spinesAfter) {
		t.Fatal("occupancy changed by rolled-back join")
	}
	kinds := traceKinds(rec, keyB)
	sawRollback := false
	for _, k := range kinds {
		if k == trace.KindRollback {
			sawRollback = true
		}
		if k == trace.KindJoin {
			t.Fatal("Join trace event emitted for a rolled-back join")
		}
	}
	if !sawRollback {
		t.Fatalf("no rollback trace event; kinds = %v", kinds)
	}

	// A successful join after the rollback charges exactly once.
	if err := c.Join(keyB, 18, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hypervisor[18]; got != 1 {
		t.Fatalf("hypervisor 18 = %d updates, want 1", got)
	}
}

// TestLeaveRollbackAccounting exercises the symmetric Leave rollback.
// A shrinking receiver set normally never needs new s-rules, so the
// test plants an extra legacy-leaf receiver behind the encoder's back
// (white-box, in-package) to make the re-encode fail. The incremental
// churn path re-encodes from the cached tree rather than the member
// list, so the plant goes into both: the tree entry trips the legacy
// capacity check in the incremental leaf re-encode, and the member
// keeps any full-recompute fallback failing identically.
func TestLeaveRollbackAccounting(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.SRuleCapacity = 1
	cfg.LegacyLeaves = []topology.LeafID{0}
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(trace.Config{})
	rec.Enable(trace.CatControl)
	c.SetTracer(rec)

	keyA := GroupKey{Tenant: 1, Group: 1}
	if _, err := c.CreateGroup(keyA, map[topology.HostID]Role{0: RoleBoth, 8: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	keyB := GroupKey{Tenant: 1, Group: 2}
	gb, err := c.CreateGroup(keyB, map[topology.HostID]Role{16: RoleBoth, 17: RoleReceiver})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a leaf-0 receiver without retreeing: the next re-encode will
	// demand leaf 0's (full) legacy table.
	gb.Members[1] = RoleReceiver
	gb.Enc.LeafPorts[topo.HostLeaf(1)] = bitmap.FromPorts(topo.LeafDownWidth(), topo.HostPort(1))
	oldEnc := gb.Enc
	hypBefore := c.Stats().Hypervisor[17]

	if err := c.Leave(keyB, 17, RoleReceiver); !errors.Is(err, ErrLegacyTableFull) {
		t.Fatalf("Leave error = %v, want ErrLegacyTableFull", err)
	}
	if got := c.Stats().Hypervisor[17]; got != hypBefore {
		t.Fatalf("hypervisor 17 charged for a rolled-back leave")
	}
	if gb.Members[17] != RoleReceiver {
		t.Fatal("membership not restored after failed leave")
	}
	if gb.Enc != oldEnc {
		t.Fatal("encoding replaced despite rollback")
	}
	for _, k := range traceKinds(rec, keyB) {
		if k == trace.KindLeave {
			t.Fatal("Leave trace event emitted for a rolled-back leave")
		}
	}
}

// TestConcurrentControllerStress (satellite: run under -race via `make
// race`) drives concurrent InstallBatch calls, per-group Join/Leave
// churn, and header/occupancy readers, then asserts the final state
// matches a serial replay. Capacity is ample so group encodings are
// independent of admission interleaving and the serial replay is the
// unique correct outcome.
func TestConcurrentControllerStress(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(1)
	cfg.SRuleCapacity = 10000
	numHosts := topo.NumHosts()

	baseSpecs := randSpecs(1, 40, 11, numHosts)
	batchA := randSpecs(10, 60, 12, numHosts)
	batchB := randSpecs(11, 60, 13, numHosts)

	// Scripted churn: per base group, a deterministic op sequence.
	type churnOp struct {
		join bool
		host topology.HostID
		role Role
	}
	ops := make([][]churnOp, len(baseSpecs))
	rng := rand.New(rand.NewSource(14))
	for i, s := range baseSpecs {
		var members []topology.HostID
		for h := range s.Members {
			members = append(members, h)
		}
		for j := 0; j < 12; j++ {
			h := topology.HostID(rng.Intn(numHosts))
			ops[i] = append(ops[i], churnOp{join: true, host: h, role: RoleReceiver})
		}
	}

	run := func(c *Controller, concurrent bool) {
		t.Helper()
		for _, s := range baseSpecs {
			if _, err := c.CreateGroup(s.Key, s.Members); err != nil {
				t.Fatal(err)
			}
		}
		applyChurn := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for _, op := range ops[i] {
					if op.join {
						c.Join(baseSpecs[i].Key, op.host, op.role) // may no-op; must not error
					} else {
						c.Leave(baseSpecs[i].Key, op.host, op.role)
					}
				}
			}
		}
		if !concurrent {
			applyChurn(0, len(ops))
			if _, err := c.InstallBatch(batchA, BatchOptions{Workers: 1}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.InstallBatch(batchB, BatchOptions{Workers: 1}); err != nil {
				t.Fatal(err)
			}
			return
		}
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InstallBatch(batchA, BatchOptions{Workers: 4})
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InstallBatch(batchB, BatchOptions{Workers: 2})
			errs <- err
		}()
		// Churn workers own disjoint group ranges, preserving per-group
		// op order.
		mid := len(ops) / 2
		wg.Add(2)
		go func() { defer wg.Done(); applyChurn(0, mid) }()
		go func() { defer wg.Done(); applyChurn(mid, len(ops)) }()
		// Readers race everything.
		stopReaders := make(chan struct{})
		var readers sync.WaitGroup
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for _, s := range baseSpecs[:8] {
					for h, r := range s.Members {
						if r.CanSend() {
							c.HeaderFor(s.Key, h)
						}
					}
				}
				for l := 0; l < topo.NumLeaves(); l++ {
					c.LeafSRuleCount(topology.LeafID(l))
				}
				c.GroupKeys()
				c.NumGroups()
			}
		}()
		wg.Wait()
		close(stopReaders)
		readers.Wait()
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}

	serial, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(serial, false)
	concurrent, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(concurrent, true)

	// Final state must match the serial replay exactly — except stats,
	// whose Join charges depend on global op interleaving only through
	// no-op detection; with join-only churn per host they do not. Compare
	// everything.
	requireSameState(t, "concurrent vs serial", serial, concurrent)
}
