package controller

import (
	"bytes"
	"testing"

	"elmo/internal/header"
	"elmo/internal/topology"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 2 // force s-rules so occupancy matters
	c1, _ := New(topo, cfg)
	if _, err := c1.CreateGroup(GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver, 56: RoleReceiver, 63: RoleSender}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateGroup(GroupKey{Tenant: 2, Group: 7},
		map[topology.HostID]Role{8: RoleBoth, 17: RoleReceiver}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	c2, _ := New(topo, cfg)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if c2.NumGroups() != 2 {
		t.Fatalf("restored %d groups", c2.NumGroups())
	}
	// Occupancy identical per switch.
	for l := 0; l < topo.NumLeaves(); l++ {
		if c1.LeafSRuleCount(topology.LeafID(l)) != c2.LeafSRuleCount(topology.LeafID(l)) {
			t.Fatalf("leaf %d occupancy differs", l)
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		if c1.SpineSRuleCount(topology.SpineID(s)) != c2.SpineSRuleCount(topology.SpineID(s)) {
			t.Fatalf("spine %d occupancy differs", s)
		}
	}
	// Sender headers identical.
	h1, err := c1.HeaderFor(GroupKey{Tenant: 1, Group: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.HeaderFor(GroupKey{Tenant: 1, Group: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := header.LayoutFor(topo)
	w1, err := header.Encode(l, h1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := header.Encode(l, h2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1, w2) {
		t.Fatal("restored controller produces different headers")
	}
	// Restore into a non-empty controller is rejected.
	if err := c2.Restore(snap); err == nil {
		t.Fatal("restore into non-empty controller accepted")
	}
	// Version check.
	snap.Version = 99
	c3, _ := New(topo, cfg)
	if err := c3.Restore(snap); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSnapshotRejectsCorruptInput(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	c, _ := New(topo, cfg)
	if _, err := c.CreateGroup(GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver, 56: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":      {},
		"truncated":  valid[:len(valid)/2],
		"garbage":    bytes.Repeat([]byte{0x00, 0xff, 0x13}, 64),
		"binary":     {0x89, 0x50, 0x4e, 0x47, 0x0d, 0x0a},
		"wrong type": []byte(`{"version": "one", "groups": 7}`),
		"version":    []byte(`{"version": 99, "groups": []}`),
	}
	for name, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s input accepted", name)
		}
	}
}

func TestRestoreNeverHalfRestores(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)

	// Structurally invalid snapshots: rejected before any mutation.
	bad := map[string]*Snapshot{
		"bad role": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: 0, Role: 7}}},
		}},
		"zero role": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: 0, Role: 0}}},
		}},
		"host out of range": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: 9999, Role: RoleBoth}}},
		}},
		"negative host": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: -1, Role: RoleBoth}}},
		}},
		"duplicate group": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: 0, Role: RoleBoth}}},
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{{Host: 1, Role: RoleBoth}}},
		}},
		"duplicate host": {Version: snapshotVersion, Groups: []GroupSnapshot{
			{Tenant: 1, Group: 1, Members: []MemberSnapshot{
				{Host: 0, Role: RoleBoth}, {Host: 0, Role: RoleReceiver}}},
		}},
	}
	for name, snap := range bad {
		c, _ := New(topo, cfg)
		if err := c.Restore(snap); err == nil {
			t.Fatalf("%s accepted", name)
		}
		if c.NumGroups() != 0 {
			t.Fatalf("%s half-restored %d groups", name, c.NumGroups())
		}
	}

	// A valid-looking snapshot that fails mid-install (s-rule tables too
	// small for the later groups) must unwind, leaving the controller
	// exactly as empty as it started.
	big, _ := New(topo, cfg)
	for i := 0; i < 8; i++ {
		key := GroupKey{Tenant: 1, Group: uint32(i + 1)}
		members := map[topology.HostID]Role{
			topology.HostID(i): RoleBoth,
			40:                 RoleReceiver,
			56:                 RoleReceiver,
		}
		if _, err := big.CreateGroup(key, members); err != nil {
			t.Fatal(err)
		}
	}
	snap := big.Snapshot()
	tight := cfg
	// Leaf 5 (hosts 40-47) is legacy, so every group needs an s-rule
	// there — and with one table entry the second group fails install.
	tight.LegacyLeaves = []topology.LeafID{5}
	tight.SRuleCapacity = 1
	c, _ := New(topo, tight)
	if err := c.Restore(snap); err == nil {
		t.Fatal("restore succeeded on a fabric it cannot fit")
	}
	if c.NumGroups() != 0 {
		t.Fatalf("failed restore left %d groups behind", c.NumGroups())
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		if c.LeafSRuleCount(topology.LeafID(l)) != 0 {
			t.Fatalf("failed restore leaked leaf %d occupancy", l)
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		if c.SpineSRuleCount(topology.SpineID(s)) != 0 {
			t.Fatalf("failed restore leaked spine %d occupancy", s)
		}
	}
}

func TestAllocateGroup(t *testing.T) {
	topo := paperTopo()
	c, _ := New(topo, testConfig(0))
	members := map[topology.HostID]Role{0: RoleBoth, 40: RoleReceiver}
	k1, err := c.AllocateGroup(5, members)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != (GroupKey{Tenant: 5, Group: 1}) {
		t.Fatalf("first allocation = %v", k1)
	}
	k2, err := c.AllocateGroup(5, members)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Group != 2 {
		t.Fatalf("second allocation = %v", k2)
	}
	// Allocation is per tenant (address-space isolation).
	k3, err := c.AllocateGroup(6, members)
	if err != nil {
		t.Fatal(err)
	}
	if k3 != (GroupKey{Tenant: 6, Group: 1}) {
		t.Fatalf("other tenant allocation = %v", k3)
	}
	// Explicit keys coexist: allocate skips past them.
	if _, err := c.CreateGroup(GroupKey{Tenant: 5, Group: 100}, members); err != nil {
		t.Fatal(err)
	}
	k4, err := c.AllocateGroup(5, members)
	if err != nil {
		t.Fatal(err)
	}
	if k4.Group != 101 {
		t.Fatalf("allocation after explicit key = %v", k4)
	}
}
