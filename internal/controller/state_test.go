package controller

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"elmo/internal/topology"
)

// buildBusyController installs a few dozen groups with varied shapes
// (single-leaf, cross-pod, sender-only members) and some churn so the
// state stream exercises every encoding field.
func buildBusyController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	topo := paperTopo()
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	n := topo.NumHosts()
	for gi := 0; gi < 40; gi++ {
		members := map[topology.HostID]Role{}
		size := 2 + rng.Intn(12)
		for len(members) < size {
			members[topology.HostID(rng.Intn(n))] = Role(1 + rng.Intn(3))
		}
		// Ensure at least one receiver so the tree is non-empty
		// (lowest host, so the history is deterministic).
		low := topology.HostID(-1)
		for h := range members {
			if low < 0 || h < low {
				low = h
			}
		}
		members[low] |= RoleReceiver
		key := GroupKey{Tenant: uint32(1 + gi%5), Group: uint32(100 + gi)}
		if _, err := c.CreateGroup(key, members); err != nil {
			t.Fatal(err)
		}
	}
	// Churn some groups so encodings come from the incremental path too.
	for gi := 0; gi < 20; gi++ {
		key := GroupKey{Tenant: uint32(1 + gi%5), Group: uint32(100 + gi)}
		h := topology.HostID(rng.Intn(n))
		_ = c.Join(key, h, RoleReceiver)
	}
	// Remove a couple so the map has holes relative to creation order.
	_ = c.RemoveGroup(GroupKey{Tenant: 1, Group: 100})
	_ = c.RemoveGroup(GroupKey{Tenant: 3, Group: 107})
	return c
}

func TestWriteReadStateRoundTrip(t *testing.T) {
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 2 // force s-rules into the stream
	c1 := buildBusyController(t, cfg)

	var buf bytes.Buffer
	if err := c1.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	c2, _ := New(paperTopo(), cfg)
	if err := c2.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if c1.NumGroups() != c2.NumGroups() {
		t.Fatalf("group count %d != %d", c1.NumGroups(), c2.NumGroups())
	}
	for _, key := range c1.GroupKeys() {
		g1, g2 := c1.Group(key), c2.Group(key)
		if g2 == nil {
			t.Fatalf("group %v missing after restore", key)
		}
		if !reflect.DeepEqual(g1.Members, g2.Members) {
			t.Fatalf("group %v members differ", key)
		}
		if !reflect.DeepEqual(g1.Enc, g2.Enc) {
			t.Fatalf("group %v encoding differs", key)
		}
	}
	topo := c1.Topology()
	for l := 0; l < topo.NumLeaves(); l++ {
		if c1.LeafSRuleCount(topology.LeafID(l)) != c2.LeafSRuleCount(topology.LeafID(l)) {
			t.Fatalf("leaf %d occupancy differs", l)
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		if c1.SpineSRuleCount(topology.SpineID(s)) != c2.SpineSRuleCount(topology.SpineID(s)) {
			t.Fatalf("spine %d occupancy differs", s)
		}
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("fingerprints differ after state round trip")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cfg := testConfig(0)
	c1 := buildBusyController(t, cfg)
	c2 := buildBusyController(t, cfg)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("identical histories should fingerprint identically")
	}
	// One extra membership changes the fingerprint.
	if err := c2.Join(GroupKey{Tenant: 2, Group: 101}, 3, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Fatal("fingerprint blind to a membership change")
	}
}

func TestReadStateRejectsCorruptInput(t *testing.T) {
	cfg := testConfig(0)
	c1 := buildBusyController(t, cfg)
	var buf bytes.Buffer
	if err := c1.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[:len(valid)/3],
		"garbage":   bytes.Repeat([]byte{0xfe, 0x01, 0x77}, 100),
		"version":   append([]byte{99}, valid[1:]...),
	}
	for name, data := range cases {
		c2, _ := New(paperTopo(), cfg)
		if err := c2.ReadState(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s input accepted", name)
		}
		// Never half-restored.
		if c2.NumGroups() != 0 {
			t.Fatalf("%s input half-restored %d groups", name, c2.NumGroups())
		}
		for l := 0; l < c2.Topology().NumLeaves(); l++ {
			if c2.LeafSRuleCount(topology.LeafID(l)) != 0 {
				t.Fatalf("%s input leaked occupancy", name)
			}
		}
	}

	// Flipping any single byte must either fail or decode to a
	// different-but-valid stream — never panic. (Spot-check a spread of
	// positions; the durable layer's envelope checksum catches the
	// rest.)
	for off := 0; off < len(valid); off += len(valid)/64 + 1 {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		c2, _ := New(paperTopo(), cfg)
		_ = c2.ReadState(bytes.NewReader(mut)) // must not panic
	}
}

func TestReadStateIntoNonEmptyFails(t *testing.T) {
	cfg := testConfig(0)
	c1 := buildBusyController(t, cfg)
	var buf bytes.Buffer
	if err := c1.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	c2, _ := New(paperTopo(), cfg)
	if _, err := c2.CreateGroup(GroupKey{Tenant: 9, Group: 9},
		map[topology.HostID]Role{0: RoleBoth, 9: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	if err := c2.ReadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadState into non-empty controller accepted")
	}
}
