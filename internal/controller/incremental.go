package controller

import (
	"elmo/internal/bitmap"
	"elmo/internal/topology"
)

// This file implements the incremental churn re-encode: a Join or
// Leave changes exactly one receiver, so instead of rebuilding the
// whole multicast tree from the member list and re-running Algorithm 1
// on both layers, the controller delta-patches the cached per-layer
// member state (Encoding.LeafPorts / Encoding.PodLeaves) and re-runs
// the clustering only for layers whose membership actually changed:
//
//   - The leaf layer always re-encodes — the changed host's port
//     bitmap changed by construction.
//   - The spine layer re-encodes only when the pod→leaf structure
//     changed (a leaf gained its first receiver or lost its last one);
//     a port-only change leaves PodLeaves untouched and the previous
//     spine section is reused verbatim.
//
// Encodings are immutable once committed, so the new encoding may
// freely alias maps and bitmaps of the old one: deltaTree clones only
// what it mutates (copy-on-write), and the reused spine section is
// shared outright. Occupancy stays exact because retree releases the
// old encoding and commits the new one — a shared SpineSRules map nets
// to zero.
//
// Under s-rule capacity contention the reused spine section can differ
// from what a full recompute at the same instant would produce: a pod
// that spilled to the default rule when the old encoding was computed
// might find table space freed since then, and a full recompute would
// upgrade it to an s-rule. The reuse keeps the old placement instead.
// That is capacity-safe (the held rules are re-committed, never grown)
// and the redundancy accounting matches the encoding actually
// installed; the serial fallback in retree (on capacity-validation
// failure) always full-recomputes.

// deltaTree builds the tree section (Pods / LeafPorts / PodLeaves) of
// a new encoding by applying a single receiver delta to old: host was
// added when joined, removed otherwise. It reports whether the
// pod→leaf structure changed, i.e. whether the spine layer must be
// re-encoded. Unchanged maps and bitmaps are shared with old.
func deltaTree(topo *topology.Topology, old *Encoding, host topology.HostID, joined bool) (e *Encoding, podsChanged bool) {
	leaf := topo.HostLeaf(host)
	pod := topo.LeafPod(leaf)
	port := topo.HostPort(host)

	e = &Encoding{Pods: old.Pods, PodLeaves: old.PodLeaves}
	e.LeafPorts = make(map[topology.LeafID]bitmap.Bitmap, len(old.LeafPorts)+1)
	for l, bm := range old.LeafPorts {
		e.LeafPorts[l] = bm
	}

	leafAdded, leafRemoved := false, false
	if joined {
		if lp, ok := e.LeafPorts[leaf]; ok {
			lp = lp.Clone()
			lp.Set(port)
			e.LeafPorts[leaf] = lp
		} else {
			lp = bitmap.New(topo.LeafDownWidth())
			lp.Set(port)
			e.LeafPorts[leaf] = lp
			leafAdded = true
		}
	} else {
		lp := e.LeafPorts[leaf].Clone()
		lp.Clear(port)
		if lp.IsEmpty() {
			delete(e.LeafPorts, leaf)
			leafRemoved = true
		} else {
			e.LeafPorts[leaf] = lp
		}
	}
	if !leafAdded && !leafRemoved {
		return e, false
	}

	// The pod→leaf structure changed: copy-on-write the pod maps.
	e.PodLeaves = make(map[topology.PodID]bitmap.Bitmap, len(old.PodLeaves)+1)
	for p, bm := range old.PodLeaves {
		e.PodLeaves[p] = bm
	}
	li := topo.LeafIndexInPod(leaf)
	if leafAdded {
		if pl, ok := e.PodLeaves[pod]; ok {
			pl = pl.Clone()
			pl.Set(li)
			e.PodLeaves[pod] = pl
		} else {
			pl := bitmap.New(topo.SpineDownWidth())
			pl.Set(li)
			e.PodLeaves[pod] = pl
			pods := old.Pods.Clone()
			pods.Set(int(pod))
			e.Pods = pods
		}
	} else {
		pl := e.PodLeaves[pod].Clone()
		pl.Clear(li)
		if pl.IsEmpty() {
			delete(e.PodLeaves, pod)
			pods := old.Pods.Clone()
			pods.Clear(int(pod))
			e.Pods = pods
		} else {
			e.PodLeaves[pod] = pl
		}
	}
	return e, true
}

// incrementalEncoding computes the encoding after a single receiver
// delta against old (which must be non-nil), re-running Algorithm 1
// only on the layers whose membership changed. Capacity checks go
// through cap exactly as in ComputeEncodingInto; the caller owns
// validation and commit. The result may alias old's maps, bitmaps, and
// rule slices (both are immutable once committed).
func incrementalEncoding(topo *topology.Topology, cfg Config, cap CapacityFunc, old *Encoding, host topology.HostID, joined bool, s *EncodeScratch) (*Encoding, error) {
	e, podsChanged := deltaTree(topo, old, host, joined)
	if len(e.LeafPorts) == 0 {
		// Last receiver left: bare empty tree, same as a full encode
		// of an empty receiver set.
		return e, nil
	}
	if err := encodeLeafLayer(topo, cfg, cap, e, s); err != nil {
		return nil, err
	}
	if podsChanged {
		if err := encodeSpineLayer(topo, cfg, cap, e, s); err != nil {
			return nil, err
		}
	} else {
		e.DSpine = old.DSpine
		e.DSpineDefault = old.DSpineDefault
		e.SpineSRules = old.SpineSRules
		e.SpineRedundancy = old.SpineRedundancy
	}
	e.Redundancy = e.LeafRedundancy + e.SpineRedundancy
	return e, nil
}
