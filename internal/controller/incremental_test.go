package controller

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"elmo/internal/topology"
)

// TestIncrementalRetreeMatchesFullRecompute drives a group through a
// scripted churn sequence hitting every delta case — port-only change,
// new leaf in an existing pod, new pod, leaf removal, pod removal,
// down to an empty receiver set — and after each operation compares
// the incrementally maintained encoding against a full recompute from
// the live member list. Capacity is ample, so the two must be
// byte-identical (the documented divergence exists only under table
// contention).
func TestIncrementalRetreeMatchesFullRecompute(t *testing.T) {
	for _, r := range []int{0, 12} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			topo := paperTopo()
			cfg := testConfig(r)
			cfg.SRuleCapacity = 10000
			c, err := New(topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			key := GroupKey{Tenant: 1, Group: 1}
			// Host 0 is a pure sender so the receiver set can drain to
			// empty without losing the group.
			if _, err := c.CreateGroup(key, map[topology.HostID]Role{
				0: RoleSender, 1: RoleReceiver,
			}); err != nil {
				t.Fatal(err)
			}
			g := c.Group(key)

			ops := []struct {
				host topology.HostID
				join bool
				desc string
			}{
				{2, true, "port-only join, same leaf"},
				{8, true, "join opens leaf 1 in existing pod"},
				{16, true, "join opens pod 1"},
				{17, true, "port-only join on leaf 2"},
				{1, false, "port-only leave, leaf 0 stays"},
				{17, false, "port-only leave on leaf 2"},
				{16, false, "leave closes leaf 2 and pod 1"},
				{8, false, "leave closes leaf 1, pod 0 stays"},
				{2, false, "last receiver leaves, tree empties"},
			}
			for _, op := range ops {
				if op.join {
					err = c.Join(key, op.host, RoleReceiver)
				} else {
					err = c.Leave(key, op.host, RoleReceiver)
				}
				if err != nil {
					t.Fatalf("%s: %v", op.desc, err)
				}
				full, ferr := ComputeEncoding(topo, cfg, c.Occupancy().CapacityFunc(), g.Receivers())
				if ferr != nil {
					t.Fatalf("%s: full recompute: %v", op.desc, ferr)
				}
				if !reflect.DeepEqual(g.Enc, full) {
					t.Fatalf("%s: incremental encoding diverged from full recompute\n inc: %+v\nfull: %+v",
						op.desc, g.Enc, full)
				}
			}
		})
	}
}

// TestIncrementalRetreeReusesSpineSection asserts the structural claim
// of the incremental path: a port-only membership change (the pod→leaf
// structure untouched) must reuse the previous encoding's spine
// section by aliasing rather than re-encoding it.
func TestIncrementalRetreeReusesSpineSection(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(12)
	cfg.SRuleCapacity = 10000
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 1, Group: 1}
	// Spread receivers across several pods so the spine section is
	// non-trivial (multiple p-rules / possibly s-rules).
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{
		0: RoleBoth, 8: RoleReceiver, 16: RoleReceiver, 24: RoleReceiver,
		32: RoleReceiver, 40: RoleReceiver, 48: RoleReceiver, 56: RoleReceiver,
	}); err != nil {
		t.Fatal(err)
	}
	g := c.Group(key)
	before := g.Enc
	if len(before.DSpine) == 0 && len(before.SpineSRules) == 0 {
		t.Fatal("test premise broken: spine section is empty")
	}

	// Host 1 shares leaf 0 with host 0: a pure port change.
	if err := c.Join(key, 1, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	after := g.Enc
	if after == before {
		t.Fatal("encoding not replaced by retree")
	}
	if len(before.DSpine) > 0 && &after.DSpine[0] != &before.DSpine[0] {
		t.Error("DSpine was re-encoded, want aliased reuse")
	}
	if before.DSpineDefault != after.DSpineDefault {
		t.Error("DSpineDefault not aliased")
	}
	if len(before.SpineSRules) > 0 &&
		reflect.ValueOf(after.SpineSRules).Pointer() != reflect.ValueOf(before.SpineSRules).Pointer() {
		t.Error("SpineSRules map was rebuilt, want aliased reuse")
	}
	if after.SpineRedundancy != before.SpineRedundancy {
		t.Error("SpineRedundancy changed on a port-only delta")
	}
	// The pod maps must also be shared on a port-only delta.
	if reflect.ValueOf(after.PodLeaves).Pointer() != reflect.ValueOf(before.PodLeaves).Pointer() {
		t.Error("PodLeaves map was rebuilt, want shared")
	}
}

// TestIncrementalRetreeRandomizedChurn fuzzes the delta cases: a long
// seeded Join/Leave sequence over the whole fabric, comparing the
// incrementally maintained encoding against a full recompute after
// every operation. Legacy switches are included so the forced-s-rule
// paths are delta-maintained too.
func TestIncrementalRetreeRandomizedChurn(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(12)
	cfg.SRuleCapacity = 10000
	cfg.LegacyLeaves = []topology.LeafID{3}
	cfg.LegacyPods = []topology.PodID{2}
	c, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 7, Group: 9}
	if _, err := c.CreateGroup(key, map[topology.HostID]Role{0: RoleSender}); err != nil {
		t.Fatal(err)
	}
	g := c.Group(key)

	rng := rand.New(rand.NewSource(43))
	in := make(map[topology.HostID]bool)
	numHosts := topo.NumHosts()
	for i := 0; i < 300; i++ {
		h := topology.HostID(1 + rng.Intn(numHosts-1))
		if in[h] {
			err = c.Leave(key, h, RoleReceiver)
			delete(in, h)
		} else {
			err = c.Join(key, h, RoleReceiver)
			in[h] = true
		}
		if err != nil {
			t.Fatalf("op %d host %d: %v", i, h, err)
		}
		full, ferr := ComputeEncoding(topo, cfg, c.Occupancy().CapacityFunc(), g.Receivers())
		if ferr != nil {
			t.Fatalf("op %d: full recompute: %v", i, ferr)
		}
		if !reflect.DeepEqual(g.Enc, full) {
			t.Fatalf("op %d (host %d, join=%t): incremental encoding diverged from full recompute",
				i, h, in[h])
		}
	}
}
