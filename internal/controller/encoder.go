// Package controller implements Elmo's logically-centralized
// controller (paper §2, §3): it tracks multicast group membership,
// computes each group's multicast tree over the Clos topology, encodes
// the tree as shared downstream p-rules plus per-switch s-rules
// (delegating the per-layer packing to package cluster), assembles the
// per-sender packet headers that hypervisor switches push onto
// packets, and reacts to membership churn and network failures with
// minimal switch updates.
package controller

import (
	"fmt"
	"slices"

	"elmo/internal/bitmap"
	"elmo/internal/cluster"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// Config bounds the encodings the controller produces.
type Config struct {
	// MaxHeaderBytes caps the assembled per-sender header (paper
	// evaluation: 325 bytes; the RMT parser ceiling is 512).
	MaxHeaderBytes int
	// SpineRuleLimit is HMax for the downstream spine section (paper: 2).
	SpineRuleLimit int
	// LeafRuleLimit is HMax for the downstream leaf section (paper:
	// 30). The effective limit also honors MaxHeaderBytes given
	// KMaxLeaf (see effectiveLeafLimit).
	LeafRuleLimit int
	// KMaxSpine / KMaxLeaf bound switches per shared p-rule.
	KMaxSpine, KMaxLeaf int
	// R is the redundancy limit for p-rule sharing (§3.2).
	R int
	// SRuleCapacity is Fmax: the group-table entries available per
	// physical switch. Zero disables s-rules entirely.
	SRuleCapacity int

	// LegacyLeaves and LegacyPods mark switches that have not migrated
	// to Elmo (§7, path to deployment): they ignore p-rules and
	// forward Elmo packets from their group tables alone, so every
	// group with tree presence there MUST take an s-rule — their
	// group-table size remains the scalability bottleneck, exactly as
	// the paper observes for incremental deployments. A pod is legacy
	// when any of its spines is. Senders whose own leaf or (for
	// cross-pod groups) own pod is legacy cannot source-route and fall
	// back to unicast (ErrLegacyPath).
	LegacyLeaves []topology.LeafID
	LegacyPods   []topology.PodID

	// EnableINT adds an in-band telemetry section to every sender
	// header, so switches record the replication path inside the
	// packet (§7 Monitoring). Costs 2 bytes at the sender plus 4 bytes
	// per hop in flight.
	EnableINT bool

	// Shards is the number of partitions the controller splits its
	// group map and update stats across (rounded up to a power of two,
	// capped at 256). Zero picks a count matching GOMAXPROCS. The
	// committed state is byte-identical for every value; the setting
	// only tunes lock contention.
	Shards int
}

// legacyLeafSet/legacyPodSet build O(1) lookups.
func (c Config) legacyLeafSet() map[topology.LeafID]bool {
	if len(c.LegacyLeaves) == 0 {
		return nil
	}
	m := make(map[topology.LeafID]bool, len(c.LegacyLeaves))
	for _, l := range c.LegacyLeaves {
		m[l] = true
	}
	return m
}

func (c Config) legacyPodSet() map[topology.PodID]bool {
	if len(c.LegacyPods) == 0 {
		return nil
	}
	m := make(map[topology.PodID]bool, len(c.LegacyPods))
	for _, p := range c.LegacyPods {
		m[p] = true
	}
	return m
}

// PaperConfig mirrors the evaluation's defaults at a given R.
func PaperConfig(r int) Config {
	return Config{
		MaxHeaderBytes: header.PaperHeaderBudget,
		SpineRuleLimit: 2,
		LeafRuleLimit:  30,
		KMaxSpine:      2,
		KMaxLeaf:       2,
		R:              r,
		SRuleCapacity:  10000,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.MaxHeaderBytes <= 0 {
		return fmt.Errorf("controller: MaxHeaderBytes must be positive")
	}
	if c.SpineRuleLimit < 0 || c.LeafRuleLimit < 0 {
		return fmt.Errorf("controller: rule limits must be non-negative")
	}
	if c.KMaxSpine < 1 || c.KMaxLeaf < 1 {
		return fmt.Errorf("controller: KMax must be at least 1")
	}
	if c.R < 0 {
		return fmt.Errorf("controller: R must be non-negative")
	}
	if c.SRuleCapacity < 0 {
		return fmt.Errorf("controller: SRuleCapacity must be non-negative")
	}
	if c.Shards < 0 {
		return fmt.Errorf("controller: Shards must be non-negative")
	}
	return nil
}

// Encoding is the sender-independent representation of one group's
// multicast tree: the shared downstream rules (D2c) plus the s-rule
// installations. Per-sender headers are assembled from it by
// SenderHeader.
type Encoding struct {
	// Pods is the bitmap of pods containing receivers.
	Pods bitmap.Bitmap
	// LeafPorts maps each receiver leaf to its member host ports.
	LeafPorts map[topology.LeafID]bitmap.Bitmap
	// PodLeaves maps each receiver pod to its member leaf bitmap.
	PodLeaves map[topology.PodID]bitmap.Bitmap

	// DSpine are the shared downstream spine p-rules (pod IDs).
	DSpine        []header.PRule
	DSpineDefault *bitmap.Bitmap
	// DLeaf are the shared downstream leaf p-rules (global leaf IDs).
	DLeaf        []header.PRule
	DLeafDefault *bitmap.Bitmap

	// SpineSRules lists pods whose logical spine takes a group-table
	// entry (installed in every physical spine of the pod).
	SpineSRules map[topology.PodID]bitmap.Bitmap
	// LeafSRules lists leaves taking a group-table entry.
	LeafSRules map[topology.LeafID]bitmap.Bitmap

	// Redundancy is the total spurious transmissions introduced by
	// p-rule sharing and default rules across both layers. It is the
	// sum of the per-layer splits below, which the incremental churn
	// path needs to recombine a fresh leaf layer with a reused spine
	// section.
	Redundancy int
	// LeafRedundancy / SpineRedundancy split Redundancy by layer.
	LeafRedundancy  int
	SpineRedundancy int
}

// Exact reports whether the encoding needs no default p-rule at either
// layer — the "groups covered with p-rules (and s-rules)" metric of
// Figures 4/5 (left).
func (e *Encoding) Exact() bool { return e.DSpineDefault == nil && e.DLeafDefault == nil }

// UsesSRules reports whether any s-rule was installed.
func (e *Encoding) UsesSRules() bool { return len(e.SpineSRules) > 0 || len(e.LeafSRules) > 0 }

// CapacityFunc reports whether a physical leaf, or every physical
// spine of a pod, still has group-table space. Implementations are
// provided by the Controller (stateful) and by the simulation harness
// (streaming counters).
type CapacityFunc struct {
	Leaf func(topology.LeafID) bool
	Pod  func(topology.PodID) bool
}

// NoCapacity is a CapacityFunc with no s-rule space anywhere.
func NoCapacity() CapacityFunc {
	return CapacityFunc{
		Leaf: func(topology.LeafID) bool { return false },
		Pod:  func(topology.PodID) bool { return false },
	}
}

// EncodeScratch owns the reusable working memory of one encoder: the
// clustering scratch plus the per-layer member slices. One scratch
// serves one goroutine; the batch pipeline gives each worker its own
// and the controller pools them for the serial Join/Leave/Create
// paths. The zero value is ready to use.
type EncodeScratch struct {
	cluster      cluster.Scratch
	leafMembers  []cluster.Member
	spineMembers []cluster.Member
}

// ComputeEncoding builds the sender-independent encoding for the given
// receiver hosts. It is deterministic and does not mutate any state:
// capacity checks go through cap, and the caller is responsible for
// committing the returned s-rule installations. An empty receiver set
// yields an empty encoding.
func ComputeEncoding(topo *topology.Topology, cfg Config, cap CapacityFunc, receivers []topology.HostID) (*Encoding, error) {
	var s EncodeScratch
	return ComputeEncodingInto(topo, cfg, cap, receivers, &s)
}

// ComputeEncodingInto is ComputeEncoding with caller-provided scratch
// memory: all clustering temporaries are reused across calls, so a warm
// scratch allocates only the returned Encoding itself. The result owns
// all of its memory (nothing aliases the scratch).
func ComputeEncodingInto(topo *topology.Topology, cfg Config, cap CapacityFunc, receivers []topology.HostID, s *EncodeScratch) (*Encoding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := newTreeEncoding(topo)
	for _, h := range receivers {
		addReceiver(topo, e, h)
	}
	if len(receivers) == 0 {
		return e, nil
	}
	if err := encodeLeafLayer(topo, cfg, cap, e, s); err != nil {
		return nil, err
	}
	if err := encodeSpineLayer(topo, cfg, cap, e, s); err != nil {
		return nil, err
	}
	e.Redundancy = e.LeafRedundancy + e.SpineRedundancy
	return e, nil
}

// newTreeEncoding returns an encoding with empty tree maps.
func newTreeEncoding(topo *topology.Topology) *Encoding {
	return &Encoding{
		Pods:      bitmap.New(topo.CoreDownWidth()),
		LeafPorts: make(map[topology.LeafID]bitmap.Bitmap),
		PodLeaves: make(map[topology.PodID]bitmap.Bitmap),
	}
}

// addReceiver folds one receiver host into the tree maps.
func addReceiver(topo *topology.Topology, e *Encoding, h topology.HostID) {
	leaf := topo.HostLeaf(h)
	pod := topo.LeafPod(leaf)
	lp, ok := e.LeafPorts[leaf]
	if !ok {
		lp = bitmap.New(topo.LeafDownWidth())
		e.LeafPorts[leaf] = lp
	}
	lp.Set(topo.HostPort(h))
	pl, ok := e.PodLeaves[pod]
	if !ok {
		pl = bitmap.New(topo.SpineDownWidth())
		e.PodLeaves[pod] = pl
	}
	pl.Set(topo.LeafIndexInPod(leaf))
	e.Pods.Set(int(pod))
}

// encodeLeafLayer runs Algorithm 1 over the leaf layer of e's tree,
// filling DLeaf, DLeafDefault, LeafSRules, and LeafRedundancy. Legacy
// leaves can only forward from their group tables, so they are forced
// onto s-rules before the modern leaves are clustered.
func encodeLeafLayer(topo *topology.Topology, cfg Config, cap CapacityFunc, e *Encoding, s *EncodeScratch) error {
	legacyLeaves := cfg.legacyLeafSet()
	for leaf, ports := range e.LeafPorts {
		if !legacyLeaves[leaf] {
			continue
		}
		if cap.Leaf == nil || !cap.Leaf(leaf) {
			return fmt.Errorf("controller: %w (leaf %d)", ErrLegacyTableFull, leaf)
		}
		if e.LeafSRules == nil {
			e.LeafSRules = make(map[topology.LeafID]bitmap.Bitmap)
		}
		e.LeafSRules[leaf] = ports.Clone()
	}

	// Leaf layer (Algorithm 1). Leaves reachable entirely through the
	// sender's own u-leaf rule still need downstream rules because any
	// member may send; the encoding is shared across senders (D2c).
	s.leafMembers = s.leafMembers[:0]
	for leaf, ports := range e.LeafPorts {
		if legacyLeaves[leaf] {
			continue
		}
		s.leafMembers = append(s.leafMembers, cluster.Member{Switch: uint16(leaf), Ports: ports})
	}
	leafAssign := assignLayer(s.leafMembers, cluster.Constraints{
		R:    cfg.R,
		HMax: effectiveLeafLimit(topo, cfg),
		KMax: cfg.KMaxLeaf,
		HasSRuleCapacity: func(sw uint16) bool {
			return cap.Leaf != nil && cap.Leaf(topology.LeafID(sw))
		},
	}, &s.cluster)
	e.DLeaf = rulesFrom(leafAssign.PRules)
	if leafAssign.Default != nil {
		d := leafAssign.Default.Clone()
		e.DLeafDefault = &d
	}
	if len(leafAssign.SRules) > 0 {
		if e.LeafSRules == nil {
			e.LeafSRules = make(map[topology.LeafID]bitmap.Bitmap, len(leafAssign.SRules))
		}
		for sw, bm := range leafAssign.SRules {
			e.LeafSRules[topology.LeafID(sw)] = bm.Clone()
		}
	}
	e.LeafRedundancy = leafAssign.Redundancy * 1 // leaf ports are host deliveries
	return nil
}

// encodeSpineLayer runs Algorithm 1 over the spine layer (one member
// per pod with receivers), filling DSpine, DSpineDefault, SpineSRules,
// and SpineRedundancy.
func encodeSpineLayer(topo *topology.Topology, cfg Config, cap CapacityFunc, e *Encoding, s *EncodeScratch) error {
	legacyPods := cfg.legacyPodSet()
	for pod, leaves := range e.PodLeaves {
		if !legacyPods[pod] {
			continue
		}
		if cap.Pod == nil || !cap.Pod(pod) {
			return fmt.Errorf("controller: %w (pod %d)", ErrLegacyTableFull, pod)
		}
		if e.SpineSRules == nil {
			e.SpineSRules = make(map[topology.PodID]bitmap.Bitmap)
		}
		e.SpineSRules[pod] = leaves.Clone()
	}

	s.spineMembers = s.spineMembers[:0]
	for pod, leaves := range e.PodLeaves {
		if legacyPods[pod] {
			continue
		}
		s.spineMembers = append(s.spineMembers, cluster.Member{Switch: uint16(pod), Ports: leaves})
	}
	spineAssign := assignLayer(s.spineMembers, cluster.Constraints{
		R:    cfg.R,
		HMax: cfg.SpineRuleLimit,
		KMax: cfg.KMaxSpine,
		HasSRuleCapacity: func(sw uint16) bool {
			return cap.Pod != nil && cap.Pod(topology.PodID(sw))
		},
	}, &s.cluster)
	e.DSpine = rulesFrom(spineAssign.PRules)
	if spineAssign.Default != nil {
		d := spineAssign.Default.Clone()
		e.DSpineDefault = &d
	}
	if len(spineAssign.SRules) > 0 {
		if e.SpineSRules == nil {
			e.SpineSRules = make(map[topology.PodID]bitmap.Bitmap, len(spineAssign.SRules))
		}
		for sw, bm := range spineAssign.SRules {
			e.SpineSRules[topology.PodID(sw)] = bm.Clone()
		}
	}
	e.SpineRedundancy = spineAssign.Redundancy
	return nil
}

// effectiveLeafLimit derives the leaf-section rule budget from the
// byte budget: the header must fit the upstream sections, the core
// bitmap, the worst-case spine section, and the leaf section.
func effectiveLeafLimit(topo *topology.Topology, cfg Config) int {
	l := header.LayoutFor(topo)
	fixed := 1 + // TagEnd
		2 + bitmap.ByteLen(l.LeafDown) + bitmap.ByteLen(l.LeafUp) + // u-leaf
		2 + bitmap.ByteLen(l.SpineDown) + bitmap.ByteLen(l.SpineUp) + // u-spine
		1 + bitmap.ByteLen(l.CoreDown) // core
	spineWorst := header.DownstreamSectionSize(l.SpineDown, repeatInt(cfg.KMaxSpine, cfg.SpineRuleLimit), true)
	leafOverhead := 3 + bitmap.ByteLen(l.LeafDown) // section framing + default rule
	perRule := 1 + 2*cfg.KMaxLeaf + bitmap.ByteLen(l.LeafDown)
	budget := cfg.MaxHeaderBytes - fixed - spineWorst - leafOverhead
	limit := budget / perRule
	if limit > cfg.LeafRuleLimit {
		limit = cfg.LeafRuleLimit
	}
	if limit < 0 {
		limit = 0
	}
	return limit
}

func repeatInt(v, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// assignLayer runs Algorithm 1, spending the redundancy budget R only
// when the layer needs it: a tree that encodes exactly (no sharing, no
// s-rules, no default) within HMax keeps its exact rules — redundant
// transmissions buy nothing there. Only when the exact encoding
// overflows the header does sharing at the configured R kick in to
// pull switches back off s-rules and default rules (the Figure 4/5
// left-panel effect), which keeps the traffic overhead of raising R
// bounded by the overflow groups instead of taxing every group.
// The returned assignment aliases the scratch (and possibly the input
// member bitmaps) and is valid only until the scratch's next use; the
// encode layer deep-copies what it keeps via rulesFrom and Clone.
func assignLayer(members []cluster.Member, c cluster.Constraints, s *cluster.Scratch) cluster.Assignment {
	exactC := c
	exactC.R = 0
	exact := cluster.AssignInto(members, exactC, s)
	if c.R == 0 || (exact.CoveredExactly() && len(exact.SRules) == 0) {
		return exact
	}
	// The exact attempt is discarded, so reusing the scratch (which
	// invalidates it) is safe.
	return cluster.AssignInto(members, c, s)
}

// rulesFrom deep-copies clustering rules into owned header p-rules:
// the inputs alias the encode scratch, the outputs must outlive it.
func rulesFrom(rules []cluster.Rule) []header.PRule {
	if len(rules) == 0 {
		return nil
	}
	out := make([]header.PRule, len(rules))
	for i, r := range rules {
		out[i] = header.PRule{Switches: slices.Clone(r.Switches), Bitmap: r.Bitmap.Clone()}
	}
	return out
}
