package controller

import (
	"bytes"
	"fmt"
	"sort"

	"elmo/internal/bitmap"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// GroupKey identifies a multicast group: the tenant's VNI plus the
// tenant-scoped group index. Tenants pick group addresses independently
// (address-space isolation); the provider never mixes groups across
// VNIs.
type GroupKey struct {
	Tenant uint32 // 24-bit VNI
	Group  uint32 // 24-bit tenant-scoped group index (maps to 239/8)
}

func (k GroupKey) String() string { return fmt.Sprintf("vni=%d group=%d", k.Tenant, k.Group) }

// Role describes how a member participates in a group (§5.1.3a).
type Role uint8

const (
	// RoleSender members transmit only; they need headers but are not
	// part of the multicast tree.
	RoleSender Role = 1 << iota
	// RoleReceiver members receive only.
	RoleReceiver
	// RoleBoth members send and receive.
	RoleBoth = RoleSender | RoleReceiver
)

// CanSend reports whether the role includes sending.
func (r Role) CanSend() bool { return r&RoleSender != 0 }

// CanReceive reports whether the role includes receiving.
func (r Role) CanReceive() bool { return r&RoleReceiver != 0 }

// GroupState is the controller's record of one group.
type GroupState struct {
	Key     GroupKey
	Members map[topology.HostID]Role
	Enc     *Encoding
}

// Receivers returns the member hosts with a receiving role, ascending.
func (g *GroupState) Receivers() []topology.HostID {
	return g.hostsWith(Role.CanReceive)
}

// Senders returns the member hosts with a sending role, ascending.
func (g *GroupState) Senders() []topology.HostID {
	return g.hostsWith(Role.CanSend)
}

func (g *GroupState) hostsWith(pred func(Role) bool) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(g.Members))
	for h, r := range g.Members {
		if pred(r) {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// UpdateStats counts control-plane rule updates issued to each switch
// class, the quantity Table 2 reports. Core switches never receive
// updates under Elmo (rules ride in packets), so a single counter
// documents that invariant.
type UpdateStats struct {
	Hypervisor map[topology.HostID]int
	Leaf       map[topology.LeafID]int
	Spine      map[topology.SpineID]int
	Core       int
}

func newUpdateStats() UpdateStats {
	return UpdateStats{
		Hypervisor: make(map[topology.HostID]int),
		Leaf:       make(map[topology.LeafID]int),
		Spine:      make(map[topology.SpineID]int),
	}
}

// Total returns the sum of all update counts.
func (u *UpdateStats) Total() int {
	n := u.Core
	for _, v := range u.Hypervisor {
		n += v
	}
	for _, v := range u.Leaf {
		n += v
	}
	for _, v := range u.Spine {
		n += v
	}
	return n
}

// Controller is the logically-centralized Elmo controller. It is not
// safe for concurrent use; callers serialize access (the real system
// shards groups over controller instances).
type Controller struct {
	topo     *topology.Topology
	cfg      Config
	layout   header.Layout
	failures *topology.FailureSet

	groups map[GroupKey]*GroupState

	// Group-table occupancy (s-rules) per physical switch.
	leafSRules  []int
	spineSRules []int

	stats UpdateStats

	tracer trace.Recorder
}

// New creates a controller for a topology.
func New(topo *topology.Topology, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		topo:        topo,
		cfg:         cfg,
		layout:      header.LayoutFor(topo),
		failures:    topology.NewFailureSet(),
		groups:      make(map[GroupKey]*GroupState),
		leafSRules:  make([]int, topo.NumLeaves()),
		spineSRules: make([]int, topo.NumSpines()),
	}, nil
}

// Topology returns the fabric the controller manages.
func (c *Controller) Topology() *topology.Topology { return c.topo }

// Config returns the controller's encoding configuration.
func (c *Controller) Config() Config { return c.cfg }

// Failures exposes the failure set (for fabric wiring and tests).
func (c *Controller) Failures() *topology.FailureSet { return c.failures }

// SetTracer attaches a flight recorder: group lifecycle, churn,
// recompute, failure charging, and rollback events are recorded under
// the control category, encoding runs under the encoder category. Nil
// or disabled recorders cost one check per control-plane operation.
func (c *Controller) SetTracer(r trace.Recorder) { c.tracer = r }

// traceControl records a control-plane event for a group.
func (c *Controller) traceControl(kind trace.Kind, key GroupKey, arg int64, note string) {
	if !trace.On(c.tracer, trace.CatControl) {
		return
	}
	c.tracer.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group, Arg: arg, Note: note,
	})
}

// traceFailure records a failure/repair event for a switch.
func (c *Controller) traceFailure(kind trace.Kind, sw int32, impacted int) {
	if !trace.On(c.tracer, trace.CatControl) {
		return
	}
	c.tracer.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		Switch: sw, Arg: int64(impacted),
	})
}

// Stats returns the accumulated update counters.
func (c *Controller) Stats() *UpdateStats {
	if c.stats.Hypervisor == nil {
		c.stats = newUpdateStats()
	}
	return &c.stats
}

// ResetStats clears the update counters (between experiment phases).
func (c *Controller) ResetStats() { c.stats = newUpdateStats() }

// Group returns the state for a key, or nil.
func (c *Controller) Group(key GroupKey) *GroupState { return c.groups[key] }

// NumGroups returns the number of live groups.
func (c *Controller) NumGroups() int { return len(c.groups) }

// GroupKeys returns the keys of all live groups in ascending
// (tenant, group) order.
func (c *Controller) GroupKeys() []GroupKey {
	keys := make([]GroupKey, 0, len(c.groups))
	for k := range c.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Group < keys[j].Group
	})
	return keys
}

// LeafSRuleCount returns the s-rule occupancy of a leaf switch.
func (c *Controller) LeafSRuleCount(l topology.LeafID) int { return c.leafSRules[l] }

// SpineSRuleCount returns the s-rule occupancy of a physical spine.
func (c *Controller) SpineSRuleCount(s topology.SpineID) int { return c.spineSRules[s] }

// capacity returns the CapacityFunc backed by the live occupancy
// counters: a pod has spine capacity only if every physical spine in
// the pod has a free entry (the logical-spine rule is replicated to
// each, since multipathing may deliver the packet to any of them).
func (c *Controller) capacity() CapacityFunc {
	return CapacityFunc{
		Leaf: func(l topology.LeafID) bool {
			return c.leafSRules[l] < c.cfg.SRuleCapacity
		},
		Pod: func(p topology.PodID) bool {
			for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
				if c.spineSRules[c.topo.SpineAt(p, plane)] >= c.cfg.SRuleCapacity {
					return false
				}
			}
			return true
		},
	}
}

// CreateGroup registers a group with the given members and computes
// its encoding, installing any s-rules. Returns an error if the key
// exists or a member host is repeated.
func (c *Controller) CreateGroup(key GroupKey, members map[topology.HostID]Role) (*GroupState, error) {
	if _, ok := c.groups[key]; ok {
		return nil, fmt.Errorf("controller: group %v already exists", key)
	}
	g := &GroupState{Key: key, Members: make(map[topology.HostID]Role, len(members))}
	for h, r := range members {
		if r == 0 {
			return nil, fmt.Errorf("controller: host %d has empty role", h)
		}
		g.Members[h] = r
	}
	if err := c.recompute(g, nil); err != nil {
		return nil, err
	}
	c.groups[key] = g
	// Every member hypervisor receives flow state (senders: encap
	// rules + headers; receivers: group delivery rules).
	st := c.Stats()
	for h := range g.Members {
		st.Hypervisor[h]++
	}
	c.traceControl(trace.KindCreateGroup, key, int64(len(g.Members)), "")
	return g, nil
}

// RemoveGroup deletes a group, releasing its s-rules.
func (c *Controller) RemoveGroup(key GroupKey) error {
	g, ok := c.groups[key]
	if !ok {
		return fmt.Errorf("controller: group %v not found", key)
	}
	c.releaseSRules(g.Enc, true)
	st := c.Stats()
	for h := range g.Members {
		st.Hypervisor[h]++
	}
	delete(c.groups, key)
	c.traceControl(trace.KindRemoveGroup, key, int64(len(g.Members)), "")
	return nil
}

// Join adds a member (or extends an existing member's role).
func (c *Controller) Join(key GroupKey, host topology.HostID, role Role) error {
	g, ok := c.groups[key]
	if !ok {
		return fmt.Errorf("controller: group %v not found", key)
	}
	if role == 0 {
		return fmt.Errorf("controller: empty role")
	}
	old, present := g.Members[host]
	if present && old|role == old {
		return nil // no change
	}
	g.Members[host] = old | role
	st := c.Stats()
	st.Hypervisor[host]++ // the member's own hypervisor always updates
	// A sender-only join leaves the tree untouched: only the source
	// hypervisor is updated (§5.1.3a).
	c.traceControl(trace.KindJoin, key, int64(host), "")
	receiverChanged := role.CanReceive() && (!present || !old.CanReceive())
	if !receiverChanged {
		return nil
	}
	if err := c.retree(g, host); err != nil {
		// Revert the membership so state matches the (rolled back)
		// encoding.
		if present {
			g.Members[host] = old
		} else {
			delete(g.Members, host)
		}
		c.traceControl(trace.KindRollback, key, int64(host), err.Error())
		return err
	}
	return nil
}

// Leave removes a role from a member, dropping the member entirely
// when no role remains.
func (c *Controller) Leave(key GroupKey, host topology.HostID, role Role) error {
	g, ok := c.groups[key]
	if !ok {
		return fmt.Errorf("controller: group %v not found", key)
	}
	old, present := g.Members[host]
	if !present || old&role == 0 {
		return fmt.Errorf("controller: host %d does not hold role in %v", host, key)
	}
	remaining := old &^ role
	if remaining == 0 {
		delete(g.Members, host)
	} else {
		g.Members[host] = remaining
	}
	st := c.Stats()
	st.Hypervisor[host]++
	c.traceControl(trace.KindLeave, key, int64(host), "")
	receiverChanged := role.CanReceive() && old.CanReceive()
	if !receiverChanged {
		return nil
	}
	if err := c.retree(g, host); err != nil {
		g.Members[host] = old
		c.traceControl(trace.KindRollback, key, int64(host), err.Error())
		return err
	}
	return nil
}

// retree recomputes a group's encoding after a receiver-set change and
// charges the resulting switch updates: s-rule diffs to leaf/spine
// switches, and header refreshes to every sender hypervisor when the
// shared downstream sections changed.
func (c *Controller) retree(g *GroupState, changed topology.HostID) error {
	oldEnc := g.Enc
	if err := c.recompute(g, oldEnc); err != nil {
		return err
	}
	c.traceControl(trace.KindRecompute, g.Key, int64(changed), "")
	st := c.Stats()
	// Leaf s-rule diffs.
	for l, bm := range encLeafSRules(oldEnc) {
		nbm, ok := g.Enc.LeafSRules[l]
		if !ok || !nbm.Equal(bm) {
			st.Leaf[l]++
		}
	}
	for l := range g.Enc.LeafSRules {
		if _, ok := encLeafSRules(oldEnc)[l]; !ok {
			st.Leaf[l]++
		}
	}
	// Spine s-rule diffs (replicated per physical spine of the pod).
	chargePod := func(p topology.PodID) {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			st.Spine[c.topo.SpineAt(p, plane)]++
		}
	}
	for p, bm := range encSpineSRules(oldEnc) {
		nbm, ok := g.Enc.SpineSRules[p]
		if !ok || !nbm.Equal(bm) {
			chargePod(p)
		}
	}
	for p := range g.Enc.SpineSRules {
		if _, ok := encSpineSRules(oldEnc)[p]; !ok {
			chargePod(p)
		}
	}
	// Shared downstream change → all sender hypervisors re-encode
	// their headers.
	if !sharedEqual(c.layout, oldEnc, g.Enc) {
		for h, r := range g.Members {
			if r.CanSend() && h != changed {
				st.Hypervisor[h]++
			}
		}
	}
	return nil
}

func encLeafSRules(e *Encoding) map[topology.LeafID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.LeafSRules
}

func encSpineSRules(e *Encoding) map[topology.PodID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.SpineSRules
}

// recompute releases the group's old s-rules, recomputes the encoding
// against current capacity, and commits the new s-rules.
func (c *Controller) recompute(g *GroupState, oldEnc *Encoding) error {
	c.releaseSRules(oldEnc, false)
	enc, err := ComputeEncoding(c.topo, c.cfg, c.capacity(), g.Receivers())
	if err != nil {
		// Roll the old s-rules back so state stays consistent.
		c.commitSRules(oldEnc)
		c.traceControl(trace.KindRollback, g.Key, -1, err.Error())
		return err
	}
	g.Enc = enc
	c.commitSRules(enc)
	c.traceEncode(g.Key, enc)
	return nil
}

// traceEncode records one encoding run with the clustering constraints
// it ran under (Hmax, Kmax, R, Fmax) and what came out: p-rule counts
// per layer, s-rule installations, default fallback, and the redundancy
// the sharing introduced.
func (c *Controller) traceEncode(key GroupKey, enc *Encoding) {
	if !trace.On(c.tracer, trace.CatEncoder) {
		return
	}
	note := fmt.Sprintf(
		"Hmax=%d/%d Kmax=%d/%d R=%d Fmax=%d -> dleaf=%d dspine=%d srules=%d+%d default=%t redundancy=%d",
		c.cfg.LeafRuleLimit, c.cfg.SpineRuleLimit, c.cfg.KMaxLeaf, c.cfg.KMaxSpine,
		c.cfg.R, c.cfg.SRuleCapacity,
		len(enc.DLeaf), len(enc.DSpine), len(enc.LeafSRules), len(enc.SpineSRules),
		!enc.Exact(), enc.Redundancy)
	c.tracer.Record(trace.Event{
		Cat: trace.CatEncoder, Kind: trace.KindEncode, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group,
		Arg:  int64(enc.Redundancy),
		Note: note,
	})
}

func (c *Controller) commitSRules(e *Encoding) {
	if e == nil {
		return
	}
	for l := range e.LeafSRules {
		c.leafSRules[l]++
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			c.spineSRules[c.topo.SpineAt(p, plane)]++
		}
	}
}

// releaseSRules decrements occupancy; when charge is true the removals
// are also counted as switch updates (group teardown).
func (c *Controller) releaseSRules(e *Encoding, charge bool) {
	if e == nil {
		return
	}
	st := c.Stats()
	for l := range e.LeafSRules {
		c.leafSRules[l]--
		if charge {
			st.Leaf[l]++
		}
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			s := c.topo.SpineAt(p, plane)
			c.spineSRules[s]--
			if charge {
				st.Spine[s]++
			}
		}
	}
}

// sharedEqual compares the sender-independent downstream sections of
// two encodings by their canonical wire form.
func sharedEqual(l header.Layout, a, b *Encoding) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	wa, errA := header.Encode(l, &header.Header{
		DSpine: a.DSpine, DSpineDefault: a.DSpineDefault,
		DLeaf: a.DLeaf, DLeafDefault: a.DLeafDefault,
	})
	wb, errB := header.Encode(l, &header.Header{
		DSpine: b.DSpine, DSpineDefault: b.DSpineDefault,
		DLeaf: b.DLeaf, DLeafDefault: b.DLeafDefault,
	})
	if errA != nil || errB != nil {
		return false
	}
	return bytes.Equal(wa, wb) && a.Pods.Equal(b.Pods)
}

// HeaderFor assembles the header for a sender in a group. The sender
// must hold a sending role.
func (c *Controller) HeaderFor(key GroupKey, sender topology.HostID) (*header.Header, error) {
	g, ok := c.groups[key]
	if !ok {
		return nil, fmt.Errorf("controller: group %v not found", key)
	}
	if !g.Members[sender].CanSend() {
		return nil, fmt.Errorf("controller: host %d is not a sender in %v", sender, key)
	}
	return SenderHeader(c.topo, c.cfg, g.Enc, sender, c.failures)
}

// FailSpine marks a spine failed and refreshes the upstream rules of
// affected groups, charging one hypervisor update per sender whose
// header changes. It returns the number of groups impacted.
//
// A group is impacted only if one of its flows actually transits the
// failed switch: the controller replicates the data plane's ECMP
// choice per sender flow (dataplane.PredictPath), so groups whose
// traffic rides other planes keep multipathing untouched — this is
// what keeps the §5.1.3b impact fractions low.
func (c *Controller) FailSpine(s topology.SpineID) int {
	c.failures.FailSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindFailSpine, int32(s), n)
	return n
}

// groupTransitsSpine reports whether any sender flow of the group
// would cross spine (pod, plane) on a healthy fabric: as the upstream
// spine (sender in the pod, flow hashed to the plane) or as the
// downstream entry spine of a member pod (the plane is chosen at the
// source leaf and preserved through the core).
func (c *Controller) groupTransitsSpine(g *GroupState, pod topology.PodID, plane int) bool {
	if _, present := g.Enc.PodLeaves[pod]; !present {
		// The pod can still be the sender's pod for sender-only hosts.
		found := false
		for h, r := range g.Members {
			if r.CanSend() && c.topo.HostPod(h) == pod {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
	for h, r := range g.Members {
		if !r.CanSend() {
			continue
		}
		outer := dataplane.SenderOuter(c.topo, h, addr)
		p, _ := dataplane.PredictPath(c.topo, outer, h)
		if p != plane {
			continue
		}
		if c.topo.HostPod(h) == pod {
			return true // upstream spine of this sender
		}
		if _, member := g.Enc.PodLeaves[pod]; member {
			return true // downstream entry spine into a member pod
		}
	}
	return false
}

// FailCore marks a core failed and refreshes affected groups' upstream
// rules, returning the number of groups impacted (groups with a sender
// flow hashed through that core while crossing pods).
func (c *Controller) FailCore(co topology.CoreID) int {
	c.failures.FailCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindFailCore, int32(co), n)
	return n
}

func (c *Controller) chargeFailure(affected func(*GroupState) bool) int {
	st := c.Stats()
	n := 0
	for _, g := range c.groups {
		if g.Enc == nil || !affected(g) {
			continue
		}
		n++
		for h, r := range g.Members {
			if r.CanSend() {
				st.Hypervisor[h]++
			}
		}
	}
	return n
}

// RepairSpine clears a spine failure (headers revert to multipathing;
// the hypervisors refreshed are those of the groups the failure had
// impacted).
func (c *Controller) RepairSpine(s topology.SpineID) int {
	c.failures.RepairSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindRepairSpine, int32(s), n)
	return n
}

// RepairCore clears a core failure.
func (c *Controller) RepairCore(co topology.CoreID) int {
	c.failures.RepairCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindRepairCore, int32(co), n)
	return n
}
