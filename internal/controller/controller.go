package controller

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"elmo/internal/bitmap"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// GroupKey identifies a multicast group: the tenant's VNI plus the
// tenant-scoped group index. Tenants pick group addresses independently
// (address-space isolation); the provider never mixes groups across
// VNIs.
type GroupKey struct {
	Tenant uint32 // 24-bit VNI
	Group  uint32 // 24-bit tenant-scoped group index (maps to 239/8)
}

func (k GroupKey) String() string { return fmt.Sprintf("vni=%d group=%d", k.Tenant, k.Group) }

// Role describes how a member participates in a group (§5.1.3a).
type Role uint8

const (
	// RoleSender members transmit only; they need headers but are not
	// part of the multicast tree.
	RoleSender Role = 1 << iota
	// RoleReceiver members receive only.
	RoleReceiver
	// RoleBoth members send and receive.
	RoleBoth = RoleSender | RoleReceiver
)

// CanSend reports whether the role includes sending.
func (r Role) CanSend() bool { return r&RoleSender != 0 }

// CanReceive reports whether the role includes receiving.
func (r Role) CanReceive() bool { return r&RoleReceiver != 0 }

// GroupState is the controller's record of one group.
//
// Concurrency: fields are written only while holding BOTH the group's
// own mutex and the controller mutex in write mode, so a reader holding
// either lock sees consistent state (see the locking notes on
// Controller).
type GroupState struct {
	Key     GroupKey
	Members map[topology.HostID]Role
	Enc     *Encoding

	// mu serializes membership operations on this group; it is acquired
	// before (never after) the controller mutex.
	mu sync.Mutex
	// removed marks a group deleted from the controller map while a
	// racing membership operation was waiting on mu.
	removed bool
}

// Receivers returns the member hosts with a receiving role, ascending.
func (g *GroupState) Receivers() []topology.HostID {
	return g.hostsWith(Role.CanReceive)
}

// Senders returns the member hosts with a sending role, ascending.
func (g *GroupState) Senders() []topology.HostID {
	return g.hostsWith(Role.CanSend)
}

func (g *GroupState) hostsWith(pred func(Role) bool) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(g.Members))
	for h, r := range g.Members {
		if pred(r) {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// UpdateStats counts control-plane rule updates issued to each switch
// class, the quantity Table 2 reports. Core switches never receive
// updates under Elmo (rules ride in packets), so a single counter
// documents that invariant.
type UpdateStats struct {
	Hypervisor map[topology.HostID]int
	Leaf       map[topology.LeafID]int
	Spine      map[topology.SpineID]int
	Core       int
}

func newUpdateStats() UpdateStats {
	return UpdateStats{
		Hypervisor: make(map[topology.HostID]int),
		Leaf:       make(map[topology.LeafID]int),
		Spine:      make(map[topology.SpineID]int),
	}
}

// Total returns the sum of all update counts.
func (u *UpdateStats) Total() int {
	n := u.Core
	for _, v := range u.Hypervisor {
		n += v
	}
	for _, v := range u.Leaf {
		n += v
	}
	for _, v := range u.Spine {
		n += v
	}
	return n
}

// Controller is the logically-centralized Elmo controller. It is safe
// for concurrent use: the encoder phase of every membership operation
// runs outside the controller lock (speculatively, against atomic
// occupancy reads), and only admission — s-rule occupancy, update
// stats, the group map — is serialized.
//
// Locking model (see DESIGN.md, "Controller concurrency model"):
//
//   - c.mu guards the group map, update stats, failure set and s-rule
//     admission; GroupState fields are written only under BOTH g.mu and
//     c.mu, so holders of either lock read them safely.
//   - g.mu serializes membership operations per group and is always
//     acquired before c.mu.
//   - s-rule occupancy lives in atomically-readable counters
//     (Occupancy) so concurrent encoder runs consult capacity without
//     blocking each other.
type Controller struct {
	topo     *topology.Topology
	cfg      Config
	layout   header.Layout
	failures *topology.FailureSet

	mu     sync.RWMutex
	groups map[GroupKey]*GroupState
	occ    *Occupancy
	stats  UpdateStats

	// scratch pools encoder working memory across membership
	// operations: Join/Leave may run concurrently (per-group locking),
	// so a pool rather than a single per-controller scratch.
	scratch sync.Pool

	tracer  trace.Recorder
	metrics *Metrics
}

func (c *Controller) getScratch() *EncodeScratch {
	if s, ok := c.scratch.Get().(*EncodeScratch); ok {
		return s
	}
	return new(EncodeScratch)
}

func (c *Controller) putScratch(s *EncodeScratch) { c.scratch.Put(s) }

// New creates a controller for a topology.
func New(topo *topology.Topology, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		topo:     topo,
		cfg:      cfg,
		layout:   header.LayoutFor(topo),
		failures: topology.NewFailureSet(),
		groups:   make(map[GroupKey]*GroupState),
		occ:      NewOccupancy(topo, cfg.SRuleCapacity),
		stats:    newUpdateStats(),
	}, nil
}

// Topology returns the fabric the controller manages.
func (c *Controller) Topology() *topology.Topology { return c.topo }

// Config returns the controller's encoding configuration.
func (c *Controller) Config() Config { return c.cfg }

// Failures exposes the failure set (for fabric wiring and tests).
func (c *Controller) Failures() *topology.FailureSet { return c.failures }

// SetTracer attaches a flight recorder: group lifecycle, churn,
// recompute, failure charging, and rollback events are recorded under
// the control category, encoding runs under the encoder category. Nil
// or disabled recorders cost one check per control-plane operation.
func (c *Controller) SetTracer(r trace.Recorder) {
	c.mu.Lock()
	c.tracer = r
	c.mu.Unlock()
}

// traceControl records a control-plane event for a group. Callers hold
// c.mu (read or write).
func (c *Controller) traceControl(kind trace.Kind, key GroupKey, arg int64, note string) {
	if !trace.On(c.tracer, trace.CatControl) {
		return
	}
	c.tracer.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group, Arg: arg, Note: note,
	})
}

// traceFailure records a failure/repair event for a switch.
func (c *Controller) traceFailure(kind trace.Kind, sw int32, impacted int) {
	if !trace.On(c.tracer, trace.CatControl) {
		return
	}
	c.tracer.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		Switch: sw, Arg: int64(impacted),
	})
}

// Stats returns the accumulated update counters. The returned pointer
// aliases live state: read it only while no concurrent mutations run
// (between experiment phases), like every other aggregate accessor.
func (c *Controller) Stats() *UpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.Hypervisor == nil {
		c.stats = newUpdateStats()
	}
	return &c.stats
}

// ResetStats clears the update counters (between experiment phases).
func (c *Controller) ResetStats() {
	c.mu.Lock()
	c.stats = newUpdateStats()
	c.mu.Unlock()
}

// Group returns the state for a key, or nil.
func (c *Controller) Group(key GroupKey) *GroupState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.groups[key]
}

// NumGroups returns the number of live groups.
func (c *Controller) NumGroups() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.groups)
}

// GroupKeys returns the keys of all live groups in ascending
// (tenant, group) order.
func (c *Controller) GroupKeys() []GroupKey {
	c.mu.RLock()
	keys := make([]GroupKey, 0, len(c.groups))
	for k := range c.groups {
		keys = append(keys, k)
	}
	c.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Group < keys[j].Group
	})
	return keys
}

// Occupancy exposes the live s-rule occupancy counters.
func (c *Controller) Occupancy() *Occupancy { return c.occ }

// LeafSRuleCount returns the s-rule occupancy of a leaf switch.
func (c *Controller) LeafSRuleCount(l topology.LeafID) int { return c.occ.LeafCount(l) }

// SpineSRuleCount returns the s-rule occupancy of a physical spine.
func (c *Controller) SpineSRuleCount(s topology.SpineID) int { return c.occ.SpineCount(s) }

// lookup fetches a group without holding any lock afterwards.
func (c *Controller) lookup(key GroupKey) *GroupState {
	c.mu.RLock()
	g := c.groups[key]
	c.mu.RUnlock()
	return g
}

// CreateGroup registers a group with the given members and computes
// its encoding, installing any s-rules. Returns an error if the key
// exists or a member host is repeated.
func (c *Controller) CreateGroup(key GroupKey, members map[topology.HostID]Role) (*GroupState, error) {
	m := c.getMetrics()
	start := m.now()
	if c.lookup(key) != nil {
		return nil, fmt.Errorf("controller: group %v already exists", key)
	}
	g := &GroupState{Key: key, Members: make(map[topology.HostID]Role, len(members))}
	for h, r := range members {
		if r == 0 {
			return nil, fmt.Errorf("controller: host %d has empty role", h)
		}
		g.Members[h] = r
	}

	// Speculative encode outside the lock; validated at admission.
	receivers := g.Receivers()
	rec := newCapRecorder(c.occ, nil)
	s := c.getScratch()
	enc, cerr := ComputeEncodingInto(c.topo, c.cfg, rec.capacity(), receivers, s)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[key]; ok {
		c.putScratch(s)
		return nil, fmt.Errorf("controller: group %v already exists", key)
	}
	if cerr != nil || !rec.valid() {
		var err error
		enc, err = ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), receivers, s)
		if err != nil {
			c.putScratch(s)
			m.countRollback()
			c.traceControl(trace.KindRollback, key, -1, err.Error())
			return nil, err
		}
	}
	c.putScratch(s)
	g.Enc = enc
	c.occ.Commit(enc)
	c.groups[key] = g
	c.traceEncode(key, enc)
	// Every member hypervisor receives flow state (senders: encap
	// rules + headers; receivers: group delivery rules).
	for h := range g.Members {
		c.stats.Hypervisor[h]++
	}
	c.traceControl(trace.KindCreateGroup, key, int64(len(g.Members)), "")
	if m != nil {
		m.ops.create.Inc()
		m.observe(m.opLatency.create, start)
	}
	return g, nil
}

// RemoveGroup deletes a group, releasing its s-rules.
func (c *Controller) RemoveGroup(key GroupKey) error {
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if g.removed || c.groups[key] != g {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.removed = true
	delete(c.groups, key)
	c.releaseSRulesCharged(g.Enc)
	for h := range g.Members {
		c.stats.Hypervisor[h]++
	}
	c.traceControl(trace.KindRemoveGroup, key, int64(len(g.Members)), "")
	if c.metrics != nil {
		c.metrics.ops.remove.Inc()
	}
	return nil
}

// Join adds a member (or extends an existing member's role).
//
// Accounting note: the member's hypervisor update and the Join trace
// event are charged only after the operation commits; a failed retree
// rolls back membership and emits only the rollback trace, so
// update-rate results never count rolled-back events.
func (c *Controller) Join(key GroupKey, host topology.HostID, role Role) error {
	if role == 0 {
		return fmt.Errorf("controller: empty role")
	}
	m := c.getMetrics()
	start := m.now()
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.removed {
		return fmt.Errorf("controller: group %v not found", key)
	}
	old, present := g.Members[host]
	if present && old|role == old {
		return nil // no change
	}
	c.mu.Lock()
	g.Members[host] = old | role
	c.mu.Unlock()
	// A sender-only join leaves the tree untouched: only the source
	// hypervisor is updated (§5.1.3a).
	receiverChanged := role.CanReceive() && (!present || !old.CanReceive())
	if receiverChanged {
		if err := c.retree(g, host, true); err != nil {
			// Revert the membership so state matches the (rolled back)
			// encoding; the hypervisor counter was never charged and
			// no Join event was emitted.
			c.mu.Lock()
			if present {
				g.Members[host] = old
			} else {
				delete(g.Members, host)
			}
			c.traceControl(trace.KindRollback, key, int64(host), err.Error())
			c.mu.Unlock()
			m.countRollback()
			return err
		}
	}
	c.mu.Lock()
	c.stats.Hypervisor[host]++ // the member's own hypervisor always updates
	c.traceControl(trace.KindJoin, key, int64(host), "")
	c.mu.Unlock()
	if m != nil {
		m.ops.join.Inc()
		m.observe(m.opLatency.join, start)
	}
	return nil
}

// Leave removes a role from a member, dropping the member entirely
// when no role remains. As with Join, the hypervisor update and Leave
// trace are charged only after a successful commit.
func (c *Controller) Leave(key GroupKey, host topology.HostID, role Role) error {
	m := c.getMetrics()
	start := m.now()
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.removed {
		return fmt.Errorf("controller: group %v not found", key)
	}
	old, present := g.Members[host]
	if !present || old&role == 0 {
		return fmt.Errorf("controller: host %d does not hold role in %v", host, key)
	}
	remaining := old &^ role
	c.mu.Lock()
	if remaining == 0 {
		delete(g.Members, host)
	} else {
		g.Members[host] = remaining
	}
	c.mu.Unlock()
	receiverChanged := role.CanReceive() && old.CanReceive()
	if receiverChanged {
		if err := c.retree(g, host, false); err != nil {
			c.mu.Lock()
			g.Members[host] = old
			c.traceControl(trace.KindRollback, key, int64(host), err.Error())
			c.mu.Unlock()
			m.countRollback()
			return err
		}
	}
	c.mu.Lock()
	c.stats.Hypervisor[host]++
	c.traceControl(trace.KindLeave, key, int64(host), "")
	c.mu.Unlock()
	if m != nil {
		m.ops.leave.Inc()
		m.observe(m.opLatency.leave, start)
	}
	return nil
}

// retree re-encodes a group after a single-receiver change (changed
// joined when joined, left otherwise) and charges the resulting switch
// updates: s-rule diffs to leaf/spine switches, and header refreshes
// to every sender hypervisor when the shared downstream sections
// changed.
//
// The encoder phase runs outside the controller lock against a
// speculative capacity view (the old encoding's s-rules count as
// released) and is incremental: it delta-patches the old encoding's
// cached tree and re-runs clustering only for layers whose membership
// changed (see incremental.go). Admission re-validates the capacity
// view and falls back to a full serial recompute under the lock when a
// capacity answer changed. Callers hold g.mu.
func (c *Controller) retree(g *GroupState, changed topology.HostID, joined bool) error {
	oldEnc := g.Enc
	rec := newCapRecorder(c.occ, oldEnc)
	s := c.getScratch()
	var enc *Encoding
	var cerr error
	if oldEnc != nil {
		enc, cerr = incrementalEncoding(c.topo, c.cfg, rec.capacity(), oldEnc, changed, joined, s)
	} else {
		enc, cerr = ComputeEncodingInto(c.topo, c.cfg, rec.capacity(), g.Receivers(), s)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.occ.Release(oldEnc)
	if cerr != nil || !rec.valid() {
		var err error
		enc, err = ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), g.Receivers(), s)
		c.putScratch(s)
		s = nil
		if err != nil {
			// Roll the old s-rules back so state stays consistent.
			c.occ.Commit(oldEnc)
			c.traceControl(trace.KindRollback, g.Key, -1, err.Error())
			return err
		}
	}
	if s != nil {
		c.putScratch(s)
	}
	g.Enc = enc
	c.occ.Commit(enc)
	c.traceEncode(g.Key, enc)
	c.traceControl(trace.KindRecompute, g.Key, int64(changed), "")
	if c.metrics != nil {
		c.metrics.recomputes.Inc()
	}
	// Leaf s-rule diffs.
	for l, bm := range encLeafSRules(oldEnc) {
		nbm, ok := g.Enc.LeafSRules[l]
		if !ok || !nbm.Equal(bm) {
			c.stats.Leaf[l]++
		}
	}
	for l := range g.Enc.LeafSRules {
		if _, ok := encLeafSRules(oldEnc)[l]; !ok {
			c.stats.Leaf[l]++
		}
	}
	// Spine s-rule diffs (replicated per physical spine of the pod).
	chargePod := func(p topology.PodID) {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			c.stats.Spine[c.topo.SpineAt(p, plane)]++
		}
	}
	for p, bm := range encSpineSRules(oldEnc) {
		nbm, ok := g.Enc.SpineSRules[p]
		if !ok || !nbm.Equal(bm) {
			chargePod(p)
		}
	}
	for p := range g.Enc.SpineSRules {
		if _, ok := encSpineSRules(oldEnc)[p]; !ok {
			chargePod(p)
		}
	}
	// Shared downstream change → all sender hypervisors re-encode
	// their headers.
	if !sharedEqual(c.layout, oldEnc, g.Enc) {
		for h, r := range g.Members {
			if r.CanSend() && h != changed {
				c.stats.Hypervisor[h]++
			}
		}
	}
	return nil
}

func encLeafSRules(e *Encoding) map[topology.LeafID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.LeafSRules
}

func encSpineSRules(e *Encoding) map[topology.PodID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.SpineSRules
}

// installLocked computes and commits an encoding for a group under
// c.mu (serial path: Restore).
func (c *Controller) installLocked(g *GroupState) error {
	s := c.getScratch()
	enc, err := ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), g.Receivers(), s)
	c.putScratch(s)
	if err != nil {
		c.traceControl(trace.KindRollback, g.Key, -1, err.Error())
		return err
	}
	g.Enc = enc
	c.occ.Commit(enc)
	c.traceEncode(g.Key, enc)
	return nil
}

// traceEncode records one encoding run with the clustering constraints
// it ran under (Hmax, Kmax, R, Fmax) and what came out: p-rule counts
// per layer, s-rule installations, default fallback, and the redundancy
// the sharing introduced.
func (c *Controller) traceEncode(key GroupKey, enc *Encoding) {
	if !trace.On(c.tracer, trace.CatEncoder) {
		return
	}
	note := fmt.Sprintf(
		"Hmax=%d/%d Kmax=%d/%d R=%d Fmax=%d -> dleaf=%d dspine=%d srules=%d+%d default=%t redundancy=%d",
		c.cfg.LeafRuleLimit, c.cfg.SpineRuleLimit, c.cfg.KMaxLeaf, c.cfg.KMaxSpine,
		c.cfg.R, c.cfg.SRuleCapacity,
		len(enc.DLeaf), len(enc.DSpine), len(enc.LeafSRules), len(enc.SpineSRules),
		!enc.Exact(), enc.Redundancy)
	c.tracer.Record(trace.Event{
		Cat: trace.CatEncoder, Kind: trace.KindEncode, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group,
		Arg:  int64(enc.Redundancy),
		Note: note,
	})
}

// releaseSRulesCharged releases an encoding's occupancy and counts the
// removals as switch updates (group teardown). Callers hold c.mu.
func (c *Controller) releaseSRulesCharged(e *Encoding) {
	if e == nil {
		return
	}
	c.occ.Release(e)
	for l := range e.LeafSRules {
		c.stats.Leaf[l]++
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			c.stats.Spine[c.topo.SpineAt(p, plane)]++
		}
	}
}

// sharedEqual compares the sender-independent downstream sections of
// two encodings by their canonical wire form.
func sharedEqual(l header.Layout, a, b *Encoding) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	wa, errA := header.Encode(l, &header.Header{
		DSpine: a.DSpine, DSpineDefault: a.DSpineDefault,
		DLeaf: a.DLeaf, DLeafDefault: a.DLeafDefault,
	})
	wb, errB := header.Encode(l, &header.Header{
		DSpine: b.DSpine, DSpineDefault: b.DSpineDefault,
		DLeaf: b.DLeaf, DLeafDefault: b.DLeafDefault,
	})
	if errA != nil || errB != nil {
		return false
	}
	return bytes.Equal(wa, wb) && a.Pods.Equal(b.Pods)
}

// HeaderFor assembles the header for a sender in a group. The sender
// must hold a sending role. Safe to call concurrently with membership
// operations on other groups (and with reads anywhere).
func (c *Controller) HeaderFor(key GroupKey, sender topology.HostID) (*header.Header, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.groups[key]
	if !ok {
		return nil, fmt.Errorf("controller: group %v not found", key)
	}
	if !g.Members[sender].CanSend() {
		return nil, fmt.Errorf("controller: host %d is not a sender in %v", sender, key)
	}
	return SenderHeader(c.topo, c.cfg, g.Enc, sender, c.failures)
}

// FailSpine marks a spine failed and refreshes the upstream rules of
// affected groups, charging one hypervisor update per sender whose
// header changes. It returns the number of groups impacted.
//
// A group is impacted only if one of its flows actually transits the
// failed switch: the controller replicates the data plane's ECMP
// choice per sender flow (dataplane.PredictPath), so groups whose
// traffic rides other planes keep multipathing untouched — this is
// what keeps the §5.1.3b impact fractions low.
func (c *Controller) FailSpine(s topology.SpineID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures.FailSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindFailSpine, int32(s), n)
	c.countFailure("fail_spine", n)
	return n
}

// groupTransitsSpine reports whether any sender flow of the group
// would cross spine (pod, plane) on a healthy fabric: as the upstream
// spine (sender in the pod, flow hashed to the plane) or as the
// downstream entry spine of a member pod (the plane is chosen at the
// source leaf and preserved through the core).
func (c *Controller) groupTransitsSpine(g *GroupState, pod topology.PodID, plane int) bool {
	if _, present := g.Enc.PodLeaves[pod]; !present {
		// The pod can still be the sender's pod for sender-only hosts.
		found := false
		for h, r := range g.Members {
			if r.CanSend() && c.topo.HostPod(h) == pod {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
	for h, r := range g.Members {
		if !r.CanSend() {
			continue
		}
		outer := dataplane.SenderOuter(c.topo, h, addr)
		p, _ := dataplane.PredictPath(c.topo, outer, h)
		if p != plane {
			continue
		}
		if c.topo.HostPod(h) == pod {
			return true // upstream spine of this sender
		}
		if _, member := g.Enc.PodLeaves[pod]; member {
			return true // downstream entry spine into a member pod
		}
	}
	return false
}

// FailCore marks a core failed and refreshes affected groups' upstream
// rules, returning the number of groups impacted (groups with a sender
// flow hashed through that core while crossing pods).
func (c *Controller) FailCore(co topology.CoreID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures.FailCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindFailCore, int32(co), n)
	c.countFailure("fail_core", n)
	return n
}

// chargeFailure runs with c.mu held: group state reads are safe because
// writers hold c.mu too.
func (c *Controller) chargeFailure(affected func(*GroupState) bool) int {
	n := 0
	for _, g := range c.groups {
		if g.Enc == nil || !affected(g) {
			continue
		}
		n++
		for h, r := range g.Members {
			if r.CanSend() {
				c.stats.Hypervisor[h]++
			}
		}
	}
	return n
}

// RepairSpine clears a spine failure (headers revert to multipathing;
// the hypervisors refreshed are those of the groups the failure had
// impacted).
func (c *Controller) RepairSpine(s topology.SpineID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures.RepairSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindRepairSpine, int32(s), n)
	c.countFailure("repair_spine", n)
	return n
}

// RepairCore clears a core failure.
func (c *Controller) RepairCore(co topology.CoreID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures.RepairCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindRepairCore, int32(co), n)
	c.countFailure("repair_core", n)
	return n
}
