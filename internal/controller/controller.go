package controller

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"elmo/internal/bitmap"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// GroupKey identifies a multicast group: the tenant's VNI plus the
// tenant-scoped group index. Tenants pick group addresses independently
// (address-space isolation); the provider never mixes groups across
// VNIs.
type GroupKey struct {
	Tenant uint32 // 24-bit VNI
	Group  uint32 // 24-bit tenant-scoped group index (maps to 239/8)
}

func (k GroupKey) String() string { return fmt.Sprintf("vni=%d group=%d", k.Tenant, k.Group) }

// Role describes how a member participates in a group (§5.1.3a).
type Role uint8

const (
	// RoleSender members transmit only; they need headers but are not
	// part of the multicast tree.
	RoleSender Role = 1 << iota
	// RoleReceiver members receive only.
	RoleReceiver
	// RoleBoth members send and receive.
	RoleBoth = RoleSender | RoleReceiver
)

// CanSend reports whether the role includes sending.
func (r Role) CanSend() bool { return r&RoleSender != 0 }

// CanReceive reports whether the role includes receiving.
func (r Role) CanReceive() bool { return r&RoleReceiver != 0 }

// GroupState is the controller's record of one group.
//
// Concurrency: fields are written only while holding BOTH the group's
// own mutex and the owning shard's mutex in write mode, so a reader
// holding either lock sees consistent state (see the locking notes on
// Controller and shard.go).
type GroupState struct {
	Key     GroupKey
	Members map[topology.HostID]Role
	Enc     *Encoding

	// mu serializes membership operations on this group; it is acquired
	// before (never after) the admission mutex and the shard mutex.
	mu sync.Mutex
	// removed marks a group deleted from its shard map while a racing
	// membership operation was waiting on mu.
	removed bool
}

// Receivers returns the member hosts with a receiving role, ascending.
func (g *GroupState) Receivers() []topology.HostID {
	return g.hostsWith(Role.CanReceive)
}

// Senders returns the member hosts with a sending role, ascending.
func (g *GroupState) Senders() []topology.HostID {
	return g.hostsWith(Role.CanSend)
}

func (g *GroupState) hostsWith(pred func(Role) bool) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(g.Members))
	for h, r := range g.Members {
		if pred(r) {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// UpdateStats counts control-plane rule updates issued to each switch
// class, the quantity Table 2 reports. Core switches never receive
// updates under Elmo (rules ride in packets), so a single counter
// documents that invariant.
type UpdateStats struct {
	Hypervisor map[topology.HostID]int
	Leaf       map[topology.LeafID]int
	Spine      map[topology.SpineID]int
	Core       int
}

func newUpdateStats() UpdateStats {
	return UpdateStats{
		Hypervisor: make(map[topology.HostID]int),
		Leaf:       make(map[topology.LeafID]int),
		Spine:      make(map[topology.SpineID]int),
	}
}

// addInto accumulates u's counters into dst.
func (u *UpdateStats) addInto(dst *UpdateStats) {
	for h, v := range u.Hypervisor {
		dst.Hypervisor[h] += v
	}
	for l, v := range u.Leaf {
		dst.Leaf[l] += v
	}
	for s, v := range u.Spine {
		dst.Spine[s] += v
	}
	dst.Core += u.Core
}

// Total returns the sum of all update counts.
func (u *UpdateStats) Total() int {
	n := u.Core
	for _, v := range u.Hypervisor {
		n += v
	}
	for _, v := range u.Leaf {
		n += v
	}
	for _, v := range u.Spine {
		n += v
	}
	return n
}

// Controller is the logically-centralized Elmo controller. It is safe
// for concurrent use and sharded for multi-core scale: the encoder
// phase of every membership operation runs outside all locks
// (speculatively, against atomic occupancy reads); admission — the
// s-rule capacity transaction — serializes only on the small
// Occupancy.admit mutex; and the group map and update stats are
// hash-partitioned across shards so publishes on different groups
// rarely contend.
//
// Locking model (see DESIGN.md, "Controller concurrency model", and
// shard.go):
//
//   - Each shard's RWMutex guards that shard's slice of the group map
//     and update stats; GroupState fields are written only under BOTH
//     g.mu and the owning shard's mutex, so holders of either read
//     them safely.
//   - g.mu serializes membership operations per group and is always
//     acquired before the admission mutex and shard mutexes.
//   - s-rule occupancy lives in atomically-readable counters
//     (Occupancy) so concurrent encoder runs consult capacity without
//     blocking each other; the validate→commit transaction holds
//     Occupancy.admit.
//   - The failure set is read under any shard read lock and mutated
//     only under all shard write locks (failure events are rare;
//     header assembly is not).
type Controller struct {
	topo     *topology.Topology
	cfg      Config
	layout   header.Layout
	failures *topology.FailureSet

	occ *Occupancy

	shards    []*ctrlShard
	shardMask uint32

	// scratch pools encoder working memory across membership
	// operations: Join/Leave may run concurrently (per-group locking),
	// so a pool rather than a single per-controller scratch.
	scratch sync.Pool

	tracer  atomic.Pointer[tracerBox]
	metrics atomic.Pointer[Metrics]
}

// tracerBox wraps the recorder interface so it can live in an atomic
// pointer (hot paths read it without any lock).
type tracerBox struct{ r trace.Recorder }

func (c *Controller) getScratch() *EncodeScratch {
	if s, ok := c.scratch.Get().(*EncodeScratch); ok {
		return s
	}
	return new(EncodeScratch)
}

func (c *Controller) putScratch(s *EncodeScratch) { c.scratch.Put(s) }

// New creates a controller for a topology.
func New(topo *topology.Topology, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShardCount()
	}
	shards := newShards(n)
	return &Controller{
		topo:      topo,
		cfg:       cfg,
		layout:    header.LayoutFor(topo),
		failures:  topology.NewFailureSet(),
		occ:       NewOccupancy(topo, cfg.SRuleCapacity),
		shards:    shards,
		shardMask: uint32(len(shards) - 1),
	}, nil
}

// Topology returns the fabric the controller manages.
func (c *Controller) Topology() *topology.Topology { return c.topo }

// Config returns the controller's encoding configuration.
func (c *Controller) Config() Config { return c.cfg }

// Failures exposes the failure set (for fabric wiring and tests).
func (c *Controller) Failures() *topology.FailureSet { return c.failures }

// SetTracer attaches a flight recorder: group lifecycle, churn,
// recompute, failure charging, and rollback events are recorded under
// the control category, encoding runs under the encoder category. Nil
// or disabled recorders cost one check per control-plane operation.
func (c *Controller) SetTracer(r trace.Recorder) {
	c.tracer.Store(&tracerBox{r: r})
}

// getTracer loads the recorder without locks (recorders are
// internally synchronized).
func (c *Controller) getTracer() trace.Recorder {
	if b := c.tracer.Load(); b != nil {
		return b.r
	}
	return nil
}

// traceControl records a control-plane event for a group.
func (c *Controller) traceControl(kind trace.Kind, key GroupKey, arg int64, note string) {
	t := c.getTracer()
	if !trace.On(t, trace.CatControl) {
		return
	}
	t.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group, Arg: arg, Note: note,
	})
}

// traceFailure records a failure/repair event for a switch.
func (c *Controller) traceFailure(kind trace.Kind, sw int32, impacted int) {
	t := c.getTracer()
	if !trace.On(t, trace.CatControl) {
		return
	}
	t.Record(trace.Event{
		Cat: trace.CatControl, Kind: kind, Tier: trace.TierController,
		Switch: sw, Arg: int64(impacted),
	})
}

// Stats returns a deep copy of the accumulated update counters, merged
// across shards under a consistent read cut. The snapshot is the
// caller's to keep: concurrent mutators can never race with it (the
// old contract returned a pointer aliasing live state).
func (c *Controller) Stats() *UpdateStats {
	out := newUpdateStats()
	c.rlockAllShards()
	for _, sh := range c.shards {
		sh.stats.addInto(&out)
	}
	c.runlockAllShards()
	return &out
}

// ResetStats clears the update counters (between experiment phases).
func (c *Controller) ResetStats() {
	c.lockAllShards()
	for _, sh := range c.shards {
		sh.stats = newUpdateStats()
	}
	c.unlockAllShards()
}

// Group returns the state for a key, or nil.
func (c *Controller) Group(key GroupKey) *GroupState {
	sh := c.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.groups[key]
}

// NumGroups returns the number of live groups.
func (c *Controller) NumGroups() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.groups)
		sh.mu.RUnlock()
	}
	return n
}

// GroupKeys returns the keys of all live groups in ascending
// (tenant, group) order.
func (c *Controller) GroupKeys() []GroupKey {
	var keys []GroupKey
	c.rlockAllShards()
	for _, sh := range c.shards {
		for k := range sh.groups {
			keys = append(keys, k)
		}
	}
	c.runlockAllShards()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Group < keys[j].Group
	})
	return keys
}

// Occupancy exposes the live s-rule occupancy counters.
func (c *Controller) Occupancy() *Occupancy { return c.occ }

// LeafSRuleCount returns the s-rule occupancy of a leaf switch.
func (c *Controller) LeafSRuleCount(l topology.LeafID) int { return c.occ.LeafCount(l) }

// SpineSRuleCount returns the s-rule occupancy of a physical spine.
func (c *Controller) SpineSRuleCount(s topology.SpineID) int { return c.occ.SpineCount(s) }

// lookup fetches a group without holding any lock afterwards.
func (c *Controller) lookup(key GroupKey) *GroupState {
	return c.Group(key)
}

// CreateGroup registers a group with the given members and computes
// its encoding, installing any s-rules. Returns an error if the key
// exists or a member host is repeated.
func (c *Controller) CreateGroup(key GroupKey, members map[topology.HostID]Role) (*GroupState, error) {
	m := c.getMetrics()
	start := m.now()
	if c.lookup(key) != nil {
		return nil, fmt.Errorf("controller: group %v already exists", key)
	}
	g := &GroupState{Key: key, Members: make(map[topology.HostID]Role, len(members))}
	for h, r := range members {
		if r == 0 {
			return nil, fmt.Errorf("controller: host %d has empty role", h)
		}
		g.Members[h] = r
	}

	// Speculative encode outside all locks; validated at admission.
	receivers := g.Receivers()
	rec := newCapRecorder(c.occ, nil)
	s := c.getScratch()
	enc, cerr := ComputeEncodingInto(c.topo, c.cfg, rec.capacity(), receivers, s)

	sh := c.shardOf(key)
	c.occ.admit.Lock()
	defer c.occ.admit.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.groups[key]; ok {
		c.putScratch(s)
		return nil, fmt.Errorf("controller: group %v already exists", key)
	}
	if cerr != nil || !rec.valid() {
		var err error
		enc, err = ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), receivers, s)
		if err != nil {
			c.putScratch(s)
			m.countRollback()
			c.traceControl(trace.KindRollback, key, -1, err.Error())
			return nil, err
		}
	}
	c.putScratch(s)
	g.Enc = enc
	c.occ.Commit(enc)
	sh.groups[key] = g
	c.traceEncode(key, enc)
	// Every member hypervisor receives flow state (senders: encap
	// rules + headers; receivers: group delivery rules).
	for h := range g.Members {
		sh.stats.Hypervisor[h]++
	}
	c.traceControl(trace.KindCreateGroup, key, int64(len(g.Members)), "")
	if m != nil {
		m.ops.create.Inc()
		m.observe(m.opLatency.create, start)
	}
	return g, nil
}

// RemoveGroup deletes a group, releasing its s-rules.
func (c *Controller) RemoveGroup(key GroupKey) error {
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sh := c.shardOf(key)
	c.occ.admit.Lock()
	defer c.occ.admit.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if g.removed || sh.groups[key] != g {
		return fmt.Errorf("controller: group %v not found", key)
	}
	g.removed = true
	delete(sh.groups, key)
	c.releaseSRulesCharged(sh, g.Enc)
	for h := range g.Members {
		sh.stats.Hypervisor[h]++
	}
	c.traceControl(trace.KindRemoveGroup, key, int64(len(g.Members)), "")
	if m := c.getMetrics(); m != nil {
		m.ops.remove.Inc()
	}
	return nil
}

// Join adds a member (or extends an existing member's role).
//
// Accounting note: the member's hypervisor update and the Join trace
// event are charged only after the operation commits; a failed retree
// rolls back membership and emits only the rollback trace, so
// update-rate results never count rolled-back events.
func (c *Controller) Join(key GroupKey, host topology.HostID, role Role) error {
	if role == 0 {
		return fmt.Errorf("controller: empty role")
	}
	m := c.getMetrics()
	start := m.now()
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	sh := c.shardOf(key)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.removed {
		return fmt.Errorf("controller: group %v not found", key)
	}
	old, present := g.Members[host]
	if present && old|role == old {
		return nil // no change
	}
	sh.mu.Lock()
	g.Members[host] = old | role
	sh.mu.Unlock()
	// A sender-only join leaves the tree untouched: only the source
	// hypervisor is updated (§5.1.3a).
	receiverChanged := role.CanReceive() && (!present || !old.CanReceive())
	if receiverChanged {
		if err := c.retree(g, sh, host, true); err != nil {
			// Revert the membership so state matches the (rolled back)
			// encoding; the hypervisor counter was never charged and
			// no Join event was emitted.
			sh.mu.Lock()
			if present {
				g.Members[host] = old
			} else {
				delete(g.Members, host)
			}
			sh.mu.Unlock()
			c.traceControl(trace.KindRollback, key, int64(host), err.Error())
			m.countRollback()
			return err
		}
	}
	sh.mu.Lock()
	sh.stats.Hypervisor[host]++ // the member's own hypervisor always updates
	sh.mu.Unlock()
	c.traceControl(trace.KindJoin, key, int64(host), "")
	if m != nil {
		m.ops.join.Inc()
		m.observe(m.opLatency.join, start)
	}
	return nil
}

// Leave removes a role from a member, dropping the member entirely
// when no role remains. As with Join, the hypervisor update and Leave
// trace are charged only after a successful commit.
func (c *Controller) Leave(key GroupKey, host topology.HostID, role Role) error {
	m := c.getMetrics()
	start := m.now()
	g := c.lookup(key)
	if g == nil {
		return fmt.Errorf("controller: group %v not found", key)
	}
	sh := c.shardOf(key)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.removed {
		return fmt.Errorf("controller: group %v not found", key)
	}
	old, present := g.Members[host]
	if !present || old&role == 0 {
		return fmt.Errorf("controller: host %d does not hold role in %v", host, key)
	}
	remaining := old &^ role
	sh.mu.Lock()
	if remaining == 0 {
		delete(g.Members, host)
	} else {
		g.Members[host] = remaining
	}
	sh.mu.Unlock()
	receiverChanged := role.CanReceive() && old.CanReceive()
	if receiverChanged {
		if err := c.retree(g, sh, host, false); err != nil {
			sh.mu.Lock()
			g.Members[host] = old
			sh.mu.Unlock()
			c.traceControl(trace.KindRollback, key, int64(host), err.Error())
			m.countRollback()
			return err
		}
	}
	sh.mu.Lock()
	sh.stats.Hypervisor[host]++
	sh.mu.Unlock()
	c.traceControl(trace.KindLeave, key, int64(host), "")
	if m != nil {
		m.ops.leave.Inc()
		m.observe(m.opLatency.leave, start)
	}
	return nil
}

// retree re-encodes a group after a single-receiver change (changed
// joined when joined, left otherwise) and charges the resulting switch
// updates: s-rule diffs to leaf/spine switches, and header refreshes
// to every sender hypervisor when the shared downstream sections
// changed.
//
// The encoder phase runs outside all locks against a speculative
// capacity view (the old encoding's s-rules count as released) and is
// incremental: it delta-patches the old encoding's cached tree and
// re-runs clustering only for layers whose membership changed (see
// incremental.go). Admission holds the occupancy admit mutex for the
// release→validate→commit transaction (falling back to a full serial
// recompute when a capacity answer changed), then publishes the new
// encoding and its stats charges under the owning shard's lock —
// other shards never block. Callers hold g.mu.
func (c *Controller) retree(g *GroupState, sh *ctrlShard, changed topology.HostID, joined bool) error {
	oldEnc := g.Enc
	rec := newCapRecorder(c.occ, oldEnc)
	s := c.getScratch()
	var enc *Encoding
	var cerr error
	if oldEnc != nil {
		enc, cerr = incrementalEncoding(c.topo, c.cfg, rec.capacity(), oldEnc, changed, joined, s)
	} else {
		enc, cerr = ComputeEncodingInto(c.topo, c.cfg, rec.capacity(), g.Receivers(), s)
	}

	c.occ.admit.Lock()
	defer c.occ.admit.Unlock()
	c.occ.Release(oldEnc)
	if cerr != nil || !rec.valid() {
		var err error
		enc, err = ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), g.Receivers(), s)
		c.putScratch(s)
		s = nil
		if err != nil {
			// Roll the old s-rules back so state stays consistent.
			c.occ.Commit(oldEnc)
			c.traceControl(trace.KindRollback, g.Key, -1, err.Error())
			return err
		}
	}
	if s != nil {
		c.putScratch(s)
	}
	c.occ.Commit(enc)

	sh.mu.Lock()
	g.Enc = enc
	// Leaf s-rule diffs.
	for l, bm := range encLeafSRules(oldEnc) {
		nbm, ok := enc.LeafSRules[l]
		if !ok || !nbm.Equal(bm) {
			sh.stats.Leaf[l]++
		}
	}
	for l := range enc.LeafSRules {
		if _, ok := encLeafSRules(oldEnc)[l]; !ok {
			sh.stats.Leaf[l]++
		}
	}
	// Spine s-rule diffs (replicated per physical spine of the pod).
	chargePod := func(p topology.PodID) {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			sh.stats.Spine[c.topo.SpineAt(p, plane)]++
		}
	}
	for p, bm := range encSpineSRules(oldEnc) {
		nbm, ok := enc.SpineSRules[p]
		if !ok || !nbm.Equal(bm) {
			chargePod(p)
		}
	}
	for p := range enc.SpineSRules {
		if _, ok := encSpineSRules(oldEnc)[p]; !ok {
			chargePod(p)
		}
	}
	// Shared downstream change → all sender hypervisors re-encode
	// their headers.
	if !sharedEqual(c.layout, oldEnc, enc) {
		for h, r := range g.Members {
			if r.CanSend() && h != changed {
				sh.stats.Hypervisor[h]++
			}
		}
	}
	sh.mu.Unlock()

	c.traceEncode(g.Key, enc)
	c.traceControl(trace.KindRecompute, g.Key, int64(changed), "")
	if m := c.getMetrics(); m != nil {
		m.recomputes.Inc()
	}
	return nil
}

func encLeafSRules(e *Encoding) map[topology.LeafID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.LeafSRules
}

func encSpineSRules(e *Encoding) map[topology.PodID]bitmap.Bitmap {
	if e == nil {
		return nil
	}
	return e.SpineSRules
}

// installBarrierLocked computes and commits an encoding for a group
// while the caller holds the full barrier (serial path: Restore).
func (c *Controller) installBarrierLocked(g *GroupState) error {
	s := c.getScratch()
	enc, err := ComputeEncodingInto(c.topo, c.cfg, c.occ.CapacityFunc(), g.Receivers(), s)
	c.putScratch(s)
	if err != nil {
		c.traceControl(trace.KindRollback, g.Key, -1, err.Error())
		return err
	}
	g.Enc = enc
	c.occ.Commit(enc)
	c.traceEncode(g.Key, enc)
	return nil
}

// traceEncode records one encoding run with the clustering constraints
// it ran under (Hmax, Kmax, R, Fmax) and what came out: p-rule counts
// per layer, s-rule installations, default fallback, and the redundancy
// the sharing introduced.
func (c *Controller) traceEncode(key GroupKey, enc *Encoding) {
	t := c.getTracer()
	if !trace.On(t, trace.CatEncoder) {
		return
	}
	note := fmt.Sprintf(
		"Hmax=%d/%d Kmax=%d/%d R=%d Fmax=%d -> dleaf=%d dspine=%d srules=%d+%d default=%t redundancy=%d",
		c.cfg.LeafRuleLimit, c.cfg.SpineRuleLimit, c.cfg.KMaxLeaf, c.cfg.KMaxSpine,
		c.cfg.R, c.cfg.SRuleCapacity,
		len(enc.DLeaf), len(enc.DSpine), len(enc.LeafSRules), len(enc.SpineSRules),
		!enc.Exact(), enc.Redundancy)
	t.Record(trace.Event{
		Cat: trace.CatEncoder, Kind: trace.KindEncode, Tier: trace.TierController,
		VNI: key.Tenant, Group: key.Group,
		Arg:  int64(enc.Redundancy),
		Note: note,
	})
}

// releaseSRulesCharged releases an encoding's occupancy and counts the
// removals as switch updates (group teardown). Callers hold the
// admission mutex and the shard's write lock.
func (c *Controller) releaseSRulesCharged(sh *ctrlShard, e *Encoding) {
	if e == nil {
		return
	}
	c.occ.Release(e)
	for l := range e.LeafSRules {
		sh.stats.Leaf[l]++
	}
	for p := range e.SpineSRules {
		for plane := 0; plane < c.topo.Config().SpinesPerPod; plane++ {
			sh.stats.Spine[c.topo.SpineAt(p, plane)]++
		}
	}
}

// sharedEqual compares the sender-independent downstream sections of
// two encodings by their canonical wire form.
func sharedEqual(l header.Layout, a, b *Encoding) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	wa, errA := header.Encode(l, &header.Header{
		DSpine: a.DSpine, DSpineDefault: a.DSpineDefault,
		DLeaf: a.DLeaf, DLeafDefault: a.DLeafDefault,
	})
	wb, errB := header.Encode(l, &header.Header{
		DSpine: b.DSpine, DSpineDefault: b.DSpineDefault,
		DLeaf: b.DLeaf, DLeafDefault: b.DLeafDefault,
	})
	if errA != nil || errB != nil {
		return false
	}
	return bytes.Equal(wa, wb) && a.Pods.Equal(b.Pods)
}

// HeaderFor assembles the header for a sender in a group. The sender
// must hold a sending role. Safe to call concurrently with membership
// operations on other groups (and with reads anywhere); only the
// owning shard's read lock is taken.
func (c *Controller) HeaderFor(key GroupKey, sender topology.HostID) (*header.Header, error) {
	sh := c.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g, ok := sh.groups[key]
	if !ok {
		return nil, fmt.Errorf("controller: group %v not found", key)
	}
	if !g.Members[sender].CanSend() {
		return nil, fmt.Errorf("controller: host %d is not a sender in %v", sender, key)
	}
	return SenderHeader(c.topo, c.cfg, g.Enc, sender, c.failures)
}

// FailSpine marks a spine failed and refreshes the upstream rules of
// affected groups, charging one hypervisor update per sender whose
// header changes. It returns the number of groups impacted.
//
// A group is impacted only if one of its flows actually transits the
// failed switch: the controller replicates the data plane's ECMP
// choice per sender flow (dataplane.PredictPath), so groups whose
// traffic rides other planes keep multipathing untouched — this is
// what keeps the §5.1.3b impact fractions low.
func (c *Controller) FailSpine(s topology.SpineID) int {
	c.lockAllShards()
	defer c.unlockAllShards()
	c.failures.FailSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindFailSpine, int32(s), n)
	c.countFailure("fail_spine", n)
	return n
}

// groupTransitsSpine reports whether any sender flow of the group
// would cross spine (pod, plane) on a healthy fabric: as the upstream
// spine (sender in the pod, flow hashed to the plane) or as the
// downstream entry spine of a member pod (the plane is chosen at the
// source leaf and preserved through the core).
func (c *Controller) groupTransitsSpine(g *GroupState, pod topology.PodID, plane int) bool {
	if _, present := g.Enc.PodLeaves[pod]; !present {
		// The pod can still be the sender's pod for sender-only hosts.
		found := false
		for h, r := range g.Members {
			if r.CanSend() && c.topo.HostPod(h) == pod {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
	for h, r := range g.Members {
		if !r.CanSend() {
			continue
		}
		outer := dataplane.SenderOuter(c.topo, h, addr)
		p, _ := dataplane.PredictPath(c.topo, outer, h)
		if p != plane {
			continue
		}
		if c.topo.HostPod(h) == pod {
			return true // upstream spine of this sender
		}
		if _, member := g.Enc.PodLeaves[pod]; member {
			return true // downstream entry spine into a member pod
		}
	}
	return false
}

// FailCore marks a core failed and refreshes affected groups' upstream
// rules, returning the number of groups impacted (groups with a sender
// flow hashed through that core while crossing pods).
func (c *Controller) FailCore(co topology.CoreID) int {
	c.lockAllShards()
	defer c.unlockAllShards()
	c.failures.FailCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindFailCore, int32(co), n)
	c.countFailure("fail_core", n)
	return n
}

// chargeFailure runs with every shard lock held (stop-the-shards
// barrier): group state reads are safe because writers hold their
// shard lock too. Each impacted group's hypervisor charges land in
// its owning shard's stats.
func (c *Controller) chargeFailure(affected func(*GroupState) bool) int {
	n := 0
	for _, sh := range c.shards {
		for _, g := range sh.groups {
			if g.Enc == nil || !affected(g) {
				continue
			}
			n++
			for h, r := range g.Members {
				if r.CanSend() {
					sh.stats.Hypervisor[h]++
				}
			}
		}
	}
	return n
}

// RepairSpine clears a spine failure (headers revert to multipathing;
// the hypervisors refreshed are those of the groups the failure had
// impacted).
func (c *Controller) RepairSpine(s topology.SpineID) int {
	c.lockAllShards()
	defer c.unlockAllShards()
	c.failures.RepairSpine(s)
	pod, plane := c.topo.SpinePod(s), c.topo.SpinePlane(s)
	n := c.chargeFailure(func(g *GroupState) bool {
		return c.groupTransitsSpine(g, pod, plane)
	})
	c.traceFailure(trace.KindRepairSpine, int32(s), n)
	c.countFailure("repair_spine", n)
	return n
}

// RepairCore clears a core failure.
func (c *Controller) RepairCore(co topology.CoreID) int {
	c.lockAllShards()
	defer c.unlockAllShards()
	c.failures.RepairCore(co)
	n := c.chargeFailure(func(g *GroupState) bool {
		if g.Enc.Pods.PopCount() <= 1 {
			return false
		}
		addr := dataplane.GroupAddr{VNI: g.Key.Tenant, Group: g.Key.Group}
		for h, r := range g.Members {
			if !r.CanSend() {
				continue
			}
			outer := dataplane.SenderOuter(c.topo, h, addr)
			if _, core := dataplane.PredictPath(c.topo, outer, h); core == co {
				return true
			}
		}
		return false
	})
	c.traceFailure(trace.KindRepairCore, int32(co), n)
	c.countFailure("repair_core", n)
	return n
}
