package controller

import (
	"runtime"
	"sync"
)

// This file implements the hash-sharded controller state. The group
// map and the update-stats counters are partitioned into N independent
// shards, each with its own RWMutex, so membership operations on
// different groups no longer serialize on one controller-wide lock.
// What remains global is deliberately lock-free or tiny:
//
//   - S-rule occupancy counters stay global atomics (a physical
//     switch's table is shared by groups in every shard, so the
//     counters cannot be partitioned by group hash) guarded by the
//     Occupancy admission mutex for the short validate→commit
//     transaction only — never during encoding.
//   - Tracer and metrics handles are atomic pointers.
//
// Lock order (acyclic, deadlock-free):
//
//	GroupState.mu  →  Occupancy.admit  →  shard.mu (ascending index)
//
// A later lock is never held while acquiring an earlier one.
// Cross-shard operations (Snapshot, WriteState, Fingerprint, failure
// charging, Restore) take a brief stop-the-shards barrier: the
// admission mutex when they touch occupancy, then every shard lock in
// index order.

// ctrlShard is one partition of the controller's mutable state.
type ctrlShard struct {
	mu     sync.RWMutex
	groups map[GroupKey]*GroupState
	stats  UpdateStats
}

// maxShards bounds the shard count; beyond this the per-shard maps are
// too sparse to matter and barrier cost dominates.
const maxShards = 256

// defaultShardCount picks the shard count when Config.Shards is zero:
// the next power of two at or above GOMAXPROCS, so independent worker
// goroutines rarely contend on the same shard lock.
func defaultShardCount() int {
	return ceilPow2(runtime.GOMAXPROCS(0))
}

// ceilPow2 rounds n up to a power of two, clamped to [1, maxShards].
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShards allocates n (rounded up to a power of two) shards.
func newShards(n int) []*ctrlShard {
	n = ceilPow2(n)
	shards := make([]*ctrlShard, n)
	for i := range shards {
		shards[i] = &ctrlShard{
			groups: make(map[GroupKey]*GroupState),
			stats:  newUpdateStats(),
		}
	}
	return shards
}

// NumShards reports the controller's shard count (a power of two).
// The committed state is byte-identical for every value; the count
// only determines how finely lock contention is spread.
func (c *Controller) NumShards() int { return len(c.shards) }

// shardIndex routes a group key to its shard with a 64-bit finalizer
// (splitmix64) over the packed key, so tenants with sequential group
// indices spread evenly.
func (c *Controller) shardIndex(key GroupKey) uint32 {
	x := uint64(key.Tenant)<<32 | uint64(key.Group)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x) & c.shardMask
}

func (c *Controller) shardOf(key GroupKey) *ctrlShard { return c.shards[c.shardIndex(key)] }

// lockAllShards write-locks every shard in index order — the
// stop-the-shards barrier for operations that need a consistent
// cross-shard view without touching occupancy (failure charging,
// stats reset).
func (c *Controller) lockAllShards() {
	for _, s := range c.shards {
		s.mu.Lock()
	}
}

func (c *Controller) unlockAllShards() {
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
}

// rlockAllShards read-locks every shard in index order, yielding a
// consistent read cut: publishes happen under a shard write lock, so
// no group can change while the cut is held.
func (c *Controller) rlockAllShards() {
	for _, s := range c.shards {
		s.mu.RLock()
	}
}

func (c *Controller) runlockAllShards() {
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.RUnlock()
	}
}

// lockAll is the full barrier: admission mutex plus every shard lock.
// Used by operations that must see occupancy consistent with the
// published encodings (Restore, ReadState).
func (c *Controller) lockAll() {
	c.occ.admit.Lock()
	c.lockAllShards()
}

func (c *Controller) unlockAll() {
	c.unlockAllShards()
	c.occ.admit.Unlock()
}
