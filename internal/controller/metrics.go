package controller

import (
	"time"

	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// Metrics caches the controller's telemetry handles: membership
// operation counters and latency histograms, rollback/recompute
// counters, and batch-install accounting. Gauges (group count, s-rule
// occupancy vs Fmax, cumulative update charges) are function-backed —
// they read the controller's live state at scrape time instead of
// being pushed.
//
// Control-plane operations are not the dataplane hot path, so the
// latency probes may call time.Now; counters remain single atomic
// adds, and a nil *Metrics costs each site one branch.
type Metrics struct {
	opLatency struct {
		create, join, leave, install *telemetry.Histogram
	}
	ops struct {
		create, remove, join, leave *telemetry.Counter
	}
	rollbacks      *telemetry.Counter
	recomputes     *telemetry.Counter
	batchInstalled *telemetry.Counter
	batchRecompute *telemetry.Counter
	failureEvents  *telemetry.CounterVec
	impactedGroups *telemetry.Counter
}

func newControllerMetrics(reg *telemetry.Registry) *Metrics {
	lat := reg.HistogramVec("elmo_controller_op_duration_seconds",
		"Latency of committed control-plane operations.", telemetry.LatencyBuckets, "op")
	ops := reg.CounterVec("elmo_controller_ops_total",
		"Committed control-plane membership operations.", "op")
	m := &Metrics{
		rollbacks: reg.Counter("elmo_controller_rollbacks_total",
			"Membership operations rolled back (capacity exhausted or encode failure)."),
		recomputes: reg.Counter("elmo_controller_recomputes_total",
			"Group encodings recomputed after receiver-set changes (retrees)."),
		batchInstalled: reg.Counter("elmo_controller_batch_installed_total",
			"Groups committed through the bulk-install pipeline."),
		batchRecompute: reg.Counter("elmo_controller_batch_recomputed_total",
			"Speculative batch encodings redone serially at the commit point."),
		failureEvents: reg.CounterVec("elmo_controller_failure_events_total",
			"Switch failure and repair events processed.", "kind"),
		impactedGroups: reg.Counter("elmo_controller_failure_impacted_groups_total",
			"Groups whose sender headers were refreshed by failure/repair events."),
	}
	m.opLatency.create = lat.With("create")
	m.opLatency.join = lat.With("join")
	m.opLatency.leave = lat.With("leave")
	m.opLatency.install = lat.With("install")
	m.ops.create = ops.With("create")
	m.ops.remove = ops.With("remove")
	m.ops.join = ops.With("join")
	m.ops.leave = ops.With("leave")
	return m
}

// now returns the wall clock only when latency probes are live, so the
// disabled path never calls time.Now.
func (m *Metrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) observe(h *telemetry.Histogram, start time.Time) {
	if m != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// countRollback reads the counter field inside the nil guard: an
// argument expression like m.rollbacks would dereference a nil bundle
// before a nil-safe method could intervene.
func (m *Metrics) countRollback() {
	if m != nil {
		m.rollbacks.Inc()
	}
}

// EnableMetrics registers the controller's metric families in reg and
// attaches the operation probes. The function-backed gauges hold a
// reference to this controller; re-registering the same names from a
// newer controller re-points them (the GaugeFunc replace contract), so
// sequential experiment phases can share one registry.
func (c *Controller) EnableMetrics(reg *telemetry.Registry) {
	m := newControllerMetrics(reg)
	c.metrics.Store(m)

	reg.GaugeFunc("elmo_controller_groups",
		"Live multicast groups.", func() float64 { return float64(c.NumGroups()) })
	reg.GaugeFunc("elmo_controller_srule_capacity",
		"Per-switch group-table capacity (Fmax).",
		func() float64 { return float64(c.occ.Capacity()) })

	occ := reg.GaugeVec("elmo_controller_srule_occupancy",
		"Live s-rule group-table occupancy across a tier (sum/max over switches).",
		"tier", "stat")
	occ.Func(func() float64 { t, _ := c.leafOccupancy(); return t }, "leaf", "total")
	occ.Func(func() float64 { _, mx := c.leafOccupancy(); return mx }, "leaf", "max")
	occ.Func(func() float64 { t, _ := c.spineOccupancy(); return t }, "spine", "total")
	occ.Func(func() float64 { _, mx := c.spineOccupancy(); return mx }, "spine", "max")

	upd := reg.GaugeVec("elmo_controller_updates",
		"Cumulative rule updates charged per switch class (Table 2 quantity).", "target")
	upd.Func(func() float64 { h, _, _, _ := c.updateTotals(); return h }, "hypervisor")
	upd.Func(func() float64 { _, l, _, _ := c.updateTotals(); return l }, "leaf")
	upd.Func(func() float64 { _, _, s, _ := c.updateTotals(); return s }, "spine")
	upd.Func(func() float64 { _, _, _, co := c.updateTotals(); return co }, "core")
}

// countFailure charges one failure/repair event and its impacted-group
// total.
func (c *Controller) countFailure(kind string, impacted int) {
	m := c.getMetrics()
	if m == nil {
		return
	}
	m.failureEvents.With(kind).Inc()
	m.impactedGroups.Add(int64(impacted))
}

// getMetrics loads the metrics handle; an atomic pointer keeps this
// lock-free on the membership hot paths.
func (c *Controller) getMetrics() *Metrics {
	return c.metrics.Load()
}

// leafOccupancy sums and maxes the live leaf s-rule counters.
func (c *Controller) leafOccupancy() (total, max float64) {
	for l := 0; l < c.topo.NumLeaves(); l++ {
		n := float64(c.occ.LeafCount(topology.LeafID(l)))
		total += n
		if n > max {
			max = n
		}
	}
	return total, max
}

// spineOccupancy sums and maxes the live spine s-rule counters.
func (c *Controller) spineOccupancy() (total, max float64) {
	for s := 0; s < c.topo.NumSpines(); s++ {
		n := float64(c.occ.SpineCount(topology.SpineID(s)))
		total += n
		if n > max {
			max = n
		}
	}
	return total, max
}

// updateTotals sums the cumulative update charges per switch class
// across all shards under a consistent read cut (scrape-time only).
func (c *Controller) updateTotals() (hyp, leaf, spine, core float64) {
	c.rlockAllShards()
	defer c.runlockAllShards()
	for _, sh := range c.shards {
		for _, v := range sh.stats.Hypervisor {
			hyp += float64(v)
		}
		for _, v := range sh.stats.Leaf {
			leaf += float64(v)
		}
		for _, v := range sh.stats.Spine {
			spine += float64(v)
		}
		core += float64(sh.stats.Core)
	}
	return hyp, leaf, spine, core
}
