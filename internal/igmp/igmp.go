// Package igmp is the tenant-facing compatibility shim: tenants keep
// using standard IP multicast — IGMPv2 membership reports and leaves —
// and the hypervisor switch snoops them and drives the Elmo
// controller's API instead of flooding the network (paper §1/§6:
// "its use of source-routing stays internal to the provider with
// tenants issuing standard IP multicast data packets", and the
// controller "receives join and leave requests ... via an API").
//
// The wire format is real IGMPv2 (RFC 2236): 8 bytes of type, max
// response time, checksum, and group address. The snooper validates
// checksums, maps the 239/8 group address to the tenant-scoped group
// index, and issues controller Join/Leave calls for the reporting VM's
// host.
package igmp

import (
	"encoding/binary"
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// IGMPv2 message types (RFC 2236).
const (
	// TypeMembershipQuery is sent by queriers; the shim never needs
	// queries (the controller knows membership), but parses them.
	TypeMembershipQuery = 0x11
	// TypeV2MembershipReport is a join.
	TypeV2MembershipReport = 0x16
	// TypeLeaveGroup is a leave.
	TypeLeaveGroup = 0x17
)

// MessageSize is the fixed IGMPv2 message size.
const MessageSize = 8

// Message is a parsed IGMPv2 message.
type Message struct {
	Type        uint8
	MaxRespTime uint8
	Group       [4]byte
}

// Marshal encodes the message with a correct checksum.
func (m *Message) Marshal() []byte {
	b := make([]byte, MessageSize)
	b[0] = m.Type
	b[1] = m.MaxRespTime
	copy(b[4:], m.Group[:])
	binary.BigEndian.PutUint16(b[2:], checksum(b))
	return b
}

// Unmarshal parses and validates an IGMPv2 message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < MessageSize {
		return nil, fmt.Errorf("igmp: message %d bytes, want %d", len(b), MessageSize)
	}
	b = b[:MessageSize]
	// The Internet checksum over a message that includes its own
	// correct checksum folds to zero.
	if verify(b) != 0 {
		return nil, fmt.Errorf("igmp: bad checksum")
	}
	m := &Message{Type: b[0], MaxRespTime: b[1]}
	copy(m.Group[:], b[4:8])
	switch m.Type {
	case TypeMembershipQuery, TypeV2MembershipReport, TypeLeaveGroup:
		return m, nil
	default:
		return nil, fmt.Errorf("igmp: unknown type %#x", m.Type)
	}
}

// checksum computes the Internet checksum with the checksum field as
// currently stored zeroed out.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 2 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// verify folds the full message (checksum included); zero means valid.
func verify(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Snooper translates a tenant VM's IGMP messages into controller API
// calls — one snooper per hypervisor, bound to the host's tenant VNI
// context. Hosts joining via IGMP participate as receivers; the
// application data path (sending) needs no signaling at all, exactly
// like classic IGMP snooping.
type Snooper struct {
	ctrl *controller.Controller
	host topology.HostID
	// Joins and Leaves count translated operations.
	Joins, Leaves int
	// AutoCreate makes the first join of an unknown group create it
	// (cloud tenants don't pre-declare IGMP groups).
	AutoCreate bool
}

// NewSnooper creates the shim for one host.
func NewSnooper(ctrl *controller.Controller, host topology.HostID) *Snooper {
	return &Snooper{ctrl: ctrl, host: host, AutoCreate: true}
}

// Handle processes one IGMP message from a local VM of the given
// tenant. Queries are ignored (the controller replaces the querier).
func (s *Snooper) Handle(tenant uint32, raw []byte) error {
	m, err := Unmarshal(raw)
	if err != nil {
		return err
	}
	group, ok := header.GroupFromIP(m.Group)
	if !ok {
		return fmt.Errorf("igmp: group %v outside the provider's 239/8 block", m.Group)
	}
	key := controller.GroupKey{Tenant: tenant, Group: group}
	switch m.Type {
	case TypeMembershipQuery:
		return nil
	case TypeV2MembershipReport:
		if s.ctrl.Group(key) == nil {
			if !s.AutoCreate {
				return fmt.Errorf("igmp: group %v does not exist", key)
			}
			if _, err := s.ctrl.CreateGroup(key, map[topology.HostID]controller.Role{
				s.host: controller.RoleBoth,
			}); err != nil {
				return err
			}
			s.Joins++
			return nil
		}
		if err := s.ctrl.Join(key, s.host, controller.RoleBoth); err != nil {
			return err
		}
		s.Joins++
		return nil
	case TypeLeaveGroup:
		g := s.ctrl.Group(key)
		if g == nil {
			return fmt.Errorf("igmp: leave for unknown group %v", key)
		}
		role, member := g.Members[s.host]
		if !member {
			return fmt.Errorf("igmp: leave from non-member host %d", s.host)
		}
		// The last member's leave retires the group entirely.
		if len(g.Members) == 1 {
			if err := s.ctrl.RemoveGroup(key); err != nil {
				return err
			}
		} else if err := s.ctrl.Leave(key, s.host, role); err != nil {
			return err
		}
		s.Leaves++
		return nil
	}
	return fmt.Errorf("igmp: unhandled type %#x", m.Type)
}

// JoinMessage builds the IGMPv2 report a tenant VM would emit for a
// group index (handy for tests and examples).
func JoinMessage(group uint32) []byte {
	m := Message{Type: TypeV2MembershipReport, Group: header.GroupIP(group)}
	return m.Marshal()
}

// LeaveMessage builds the IGMPv2 leave for a group index.
func LeaveMessage(group uint32) []byte {
	m := Message{Type: TypeLeaveGroup, Group: header.GroupIP(group)}
	return m.Marshal()
}
