package igmp

import (
	"testing"
	"testing/quick"

	"elmo/internal/controller"
	"elmo/internal/header"
	"elmo/internal/topology"
)

func TestMessageRoundTrip(t *testing.T) {
	for _, typ := range []uint8{TypeMembershipQuery, TypeV2MembershipReport, TypeLeaveGroup} {
		m := Message{Type: typ, MaxRespTime: 10, Group: header.GroupIP(1234)}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("type %#x: %v", typ, err)
		}
		if *got != m {
			t.Fatalf("roundtrip %+v != %+v", got, m)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	good := JoinMessage(7)
	corrupt := append([]byte{}, good...)
	corrupt[7] ^= 0xff // group byte changes, checksum now wrong
	unknown := (&Message{Type: 0x99, Group: header.GroupIP(1)}).Marshal()
	cases := [][]byte{nil, good[:4], corrupt, unknown}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQuickChecksumDetectsBitFlips(t *testing.T) {
	f := func(group uint32, bit uint8) bool {
		g := group % (1 << 24)
		msg := JoinMessage(g)
		i := int(bit) % (MessageSize * 8)
		msg[i/8] ^= 1 << (uint(i) % 8)
		_, err := Unmarshal(msg)
		// Any single bit flip must be detected (Internet checksum
		// catches all 1-bit errors) — either as a checksum failure or,
		// if it hit the type field, as an unknown type.
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnooperLifecycle(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	ctrl, err := controller.New(topo, controller.PaperConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	s0 := NewSnooper(ctrl, 0)
	s40 := NewSnooper(ctrl, 40)
	const tenant, group = 9, 77

	// First join auto-creates the group.
	if err := s0.Handle(tenant, JoinMessage(group)); err != nil {
		t.Fatal(err)
	}
	key := controller.GroupKey{Tenant: tenant, Group: group}
	if ctrl.Group(key) == nil {
		t.Fatal("group not created")
	}
	// Second host joins.
	if err := s40.Handle(tenant, JoinMessage(group)); err != nil {
		t.Fatal(err)
	}
	if got := len(ctrl.Group(key).Members); got != 2 {
		t.Fatalf("members = %d", got)
	}
	// Duplicate join is a no-op at the controller, not an error.
	if err := s40.Handle(tenant, JoinMessage(group)); err != nil {
		t.Fatal(err)
	}
	// Queries are ignored.
	q := (&Message{Type: TypeMembershipQuery, Group: header.GroupIP(group)}).Marshal()
	if err := s0.Handle(tenant, q); err != nil {
		t.Fatal(err)
	}
	// Leaves; the last one retires the group.
	if err := s40.Handle(tenant, LeaveMessage(group)); err != nil {
		t.Fatal(err)
	}
	if got := len(ctrl.Group(key).Members); got != 1 {
		t.Fatalf("members after leave = %d", got)
	}
	if err := s0.Handle(tenant, LeaveMessage(group)); err != nil {
		t.Fatal(err)
	}
	if ctrl.Group(key) != nil {
		t.Fatal("group not retired after last leave")
	}
	// s40 reported twice; each report translates to a Join call.
	if s0.Joins != 1 || s0.Leaves != 1 || s40.Joins != 2 || s40.Leaves != 1 {
		t.Fatalf("counters: %d/%d %d/%d", s0.Joins, s0.Leaves, s40.Joins, s40.Leaves)
	}
	// Tenant isolation: the same group index under another VNI is a
	// different group.
	if err := s0.Handle(tenant+1, JoinMessage(group)); err != nil {
		t.Fatal(err)
	}
	if ctrl.Group(controller.GroupKey{Tenant: tenant + 1, Group: group}) == nil {
		t.Fatal("other tenant's group missing")
	}
}

func TestSnooperErrors(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	ctrl, _ := controller.New(topo, controller.PaperConfig(0))
	s := NewSnooper(ctrl, 0)
	// Leave before join.
	if err := s.Handle(1, LeaveMessage(5)); err == nil {
		t.Fatal("leave of unknown group accepted")
	}
	// Non-239/8 group address.
	bad := (&Message{Type: TypeV2MembershipReport, Group: [4]byte{224, 0, 0, 1}}).Marshal()
	if err := s.Handle(1, bad); err == nil {
		t.Fatal("out-of-block group accepted")
	}
	// AutoCreate off.
	s.AutoCreate = false
	if err := s.Handle(1, JoinMessage(6)); err == nil {
		t.Fatal("join of unknown group accepted with AutoCreate off")
	}
	// Leave from a host that never joined.
	if _, err := ctrl.CreateGroup(controller.GroupKey{Tenant: 1, Group: 8},
		map[topology.HostID]controller.Role{40: controller.RoleBoth}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle(1, LeaveMessage(8)); err == nil {
		t.Fatal("leave from non-member accepted")
	}
}
