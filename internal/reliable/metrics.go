package reliable

import "elmo/internal/telemetry"

// Metrics mirrors the Session's repair-loop counters into a telemetry
// registry so live runs can watch recovery behavior without polling the
// session ints. Attach via Session.Metrics; nil costs one branch per
// event.
type Metrics struct {
	naks             *telemetry.Counter
	nakRetries       *telemetry.Counter
	controlDrops     *telemetry.Counter
	corruptFrames    *telemetry.Counter
	unicastFallbacks *telemetry.Counter
	retransmits      *telemetry.Counter
}

// NewMetrics registers the reliable-delivery metric families in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		naks: reg.Counter("elmo_reliable_naks_total",
			"NAK repair requests the sender processed."),
		nakRetries: reg.Counter("elmo_reliable_nak_retries_total",
			"Repair rounds retried after lost NAK or RDATA control frames."),
		controlDrops: reg.Counter("elmo_reliable_control_drops_total",
			"NAK/RDATA unicasts eaten by injected control loss."),
		corruptFrames: reg.Counter("elmo_reliable_corrupt_frames_total",
			"Undecodable frames treated as loss by receivers."),
		unicastFallbacks: reg.Counter("elmo_reliable_unicast_fallbacks_total",
			"Publishes degraded to per-receiver unicast (no multicast sender flow)."),
		retransmits: reg.Counter("elmo_reliable_retransmits_total",
			"RDATA repair frames retransmitted to receivers over unicast."),
	}
}

func (m *Metrics) onNAK() {
	if m != nil {
		m.naks.Inc()
	}
}

func (m *Metrics) onNAKRetry() {
	if m != nil {
		m.nakRetries.Inc()
	}
}

func (m *Metrics) onControlDrop() {
	if m != nil {
		m.controlDrops.Inc()
	}
}

func (m *Metrics) onCorrupt() {
	if m != nil {
		m.corruptFrames.Inc()
	}
}

func (m *Metrics) onFallback() {
	if m != nil {
		m.unicastFallbacks.Inc()
	}
}

func (m *Metrics) onRetransmit() {
	if m != nil {
		m.retransmits.Inc()
	}
}
