package reliable

import (
	"fmt"
	"math/rand"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

func sessionFixture(t *testing.T) (*fabric.Fabric, *controller.Controller, controller.GroupKey, topology.HostID, []topology.HostID) {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 9, Group: 1}
	sender := topology.HostID(0)
	receivers := []topology.HostID{1, 17, 40, 56}
	members := map[topology.HostID]controller.Role{sender: controller.RoleSender}
	for _, h := range receivers {
		members[h] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	return fab, ctrl, key, sender, receivers
}

func TestSessionLosslessDelivery(t *testing.T) {
	fab, ctrl, key, sender, receivers := sessionFixture(t)
	sess, err := NewSession(fab, ctrl, key, sender, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := sess.Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if sess.NAKs != 0 {
		t.Fatalf("lossless run produced %d NAKs", sess.NAKs)
	}
	for _, h := range receivers {
		got := sess.Delivered(h)
		if len(got) != n {
			t.Fatalf("host %d delivered %d of %d", h, len(got), n)
		}
		for i, p := range got {
			if string(p) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("host %d out of order at %d: %q", h, i, p)
			}
		}
	}
}

func TestSessionRecoversInjectedLoss(t *testing.T) {
	fab, ctrl, key, sender, receivers := sessionFixture(t)
	sess, err := NewSession(fab, ctrl, key, sender, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sess.LossInjector = func(h topology.HostID, seq uint32) bool {
		return rng.Float64() < 0.35
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := sess.Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if sess.NAKs == 0 {
		t.Fatal("35% loss produced no NAKs")
	}
	for _, h := range receivers {
		got := sess.Delivered(h)
		if len(got) != n {
			t.Fatalf("host %d delivered %d of %d after recovery", h, len(got), n)
		}
		for i, p := range got {
			if string(p) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("host %d out of order at %d: %q", h, i, p)
			}
		}
	}
}

// TestSessionConvergesUnderNAKLoss injects loss on both the data path
// and the NAK/RDATA control path: before the retry budget existed, one
// lost NAK wedged recovery forever. Every receiver must still converge
// to full in-order delivery, with retries (and backoff callbacks)
// recorded.
func TestSessionConvergesUnderNAKLoss(t *testing.T) {
	fab, ctrl, key, sender, receivers := sessionFixture(t)
	sess, err := NewSession(fab, ctrl, key, sender, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sess.LossInjector = func(h topology.HostID, seq uint32) bool {
		return rng.Float64() < 0.25
	}
	var backoffs int
	sess.ControlLoss = func(msgType uint8, from, to topology.HostID) bool {
		return rng.Float64() < 0.30
	}
	sess.BackoffFn = func(attempt int) { backoffs++ }
	const n = 60
	for i := 0; i < n; i++ {
		if err := sess.Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if sess.ControlDrops == 0 || sess.NAKRetries == 0 {
		t.Fatalf("control loss not exercised: drops=%d retries=%d",
			sess.ControlDrops, sess.NAKRetries)
	}
	if backoffs == 0 {
		t.Fatal("retries never invoked the backoff hook")
	}
	for _, h := range receivers {
		got := sess.Delivered(h)
		if len(got) != n {
			t.Fatalf("host %d delivered %d of %d under NAK loss (drops=%d retries=%d)",
				h, len(got), n, sess.ControlDrops, sess.NAKRetries)
		}
		for i, p := range got {
			if string(p) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("host %d out of order at %d: %q", h, i, p)
			}
		}
	}
}

// TestSessionUnicastFallback removes the sender flow (the state of a
// §3.3-degraded group) and checks Publish falls back to per-receiver
// unicast instead of failing, then resumes multicast once the flow is
// reinstalled.
func TestSessionUnicastFallback(t *testing.T) {
	fab, ctrl, key, sender, receivers := sessionFixture(t)
	sess, err := NewSession(fab, ctrl, key, sender, 64)
	if err != nil {
		t.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	if err := sess.Publish([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	fab.Hypervisors[sender].RemoveSenderFlow(addr)
	if err := sess.Publish([]byte("degraded")); err != nil {
		t.Fatalf("publish without sender flow should degrade, got %v", err)
	}
	if sess.UnicastFallbacks != 1 {
		t.Fatalf("want 1 unicast fallback, got %d", sess.UnicastFallbacks)
	}
	hdr, err := ctrl.HeaderFor(key, sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Hypervisors[sender].InstallSenderFlow(addr, hdr); err != nil {
		t.Fatal(err)
	}
	if err := sess.Publish([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if sess.UnicastFallbacks != 1 {
		t.Fatalf("fallback fired after repair: %d", sess.UnicastFallbacks)
	}
	for _, h := range receivers {
		got := sess.Delivered(h)
		if len(got) != 3 {
			t.Fatalf("host %d delivered %d of 3", h, len(got))
		}
		for i, want := range []string{"pre", "degraded", "post"} {
			if string(got[i]) != want {
				t.Fatalf("host %d message %d = %q, want %q", h, i, got[i], want)
			}
		}
	}
}

func TestSessionUnknownGroup(t *testing.T) {
	fab, ctrl, _, sender, _ := sessionFixture(t)
	if _, err := NewSession(fab, ctrl, controller.GroupKey{Tenant: 99, Group: 99}, sender, 8); err == nil {
		t.Fatal("unknown group accepted")
	}
}
