package reliable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	cases := []*Message{
		{Type: TypeData, Seq: 7, Payload: []byte("abc")},
		{Type: TypeRData, Seq: 0, Payload: nil},
		{Type: TypeNAK, Ranges: []Range{{1, 3}, {9, 9}}},
	}
	for _, m := range cases {
		b, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || got.Seq != m.Seq || len(got.Ranges) != len(m.Ranges) ||
			string(got.Payload) != string(m.Payload) {
			t.Fatalf("roundtrip: %+v vs %+v", got, m)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x00},
		{magic},
		{magic, 99, 0},
		{magic, TypeData, 1, 2},            // truncated seq
		{magic, TypeNAK, 0},                // zero ranges
		{magic, TypeNAK, 1, 0, 0, 0, 5, 0}, // truncated range
		func() []byte { // inverted range
			b, _ := (&Message{Type: TypeNAK, Ranges: []Range{{5, 5}}}).Marshal()
			b[6] = 9 // First=9 > Last=5
			return b
		}(),
	}
	for i, b := range bad {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInOrderDelivery(t *testing.T) {
	s := NewSender(16)
	r := NewReceiver(16)
	for i := 0; i < 10; i++ {
		frame, seq, err := s.Next([]byte{byte(i)})
		if err != nil || seq != uint32(i) {
			t.Fatalf("seq=%d err=%v", seq, err)
		}
		out, nak, err := r.Handle(frame)
		if err != nil {
			t.Fatal(err)
		}
		if nak != nil {
			t.Fatalf("unexpected NAK at %d", i)
		}
		if len(out) != 1 || out[0][0] != byte(i) {
			t.Fatalf("delivery at %d: %v", i, out)
		}
	}
	if r.Next() != 10 || r.Pending() != 0 {
		t.Fatalf("receiver state: next=%d pending=%d", r.Next(), r.Pending())
	}
}

func TestGapRecovery(t *testing.T) {
	s := NewSender(16)
	r := NewReceiver(16)
	var frames [][]byte
	for i := 0; i < 5; i++ {
		f, _, err := s.Next([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	// Deliver 0, drop 1 and 2, deliver 3 and 4.
	if _, nak, _ := r.Handle(frames[0]); nak != nil {
		t.Fatal("NAK on contiguous delivery")
	}
	_, nak, err := r.Handle(frames[3])
	if err != nil {
		t.Fatal(err)
	}
	if nak == nil {
		t.Fatal("no NAK for gap")
	}
	out, nak2, err := r.Handle(frames[4])
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if nak2 == nil {
		t.Fatal("gap persists, expected NAK")
	}
	nm, err := Unmarshal(nak2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nm.Ranges) != 1 || nm.Ranges[0] != (Range{1, 2}) {
		t.Fatalf("NAK ranges = %+v", nm.Ranges)
	}
	// Sender repairs; receiver flushes in order.
	repairs, err := s.HandleNAK(nm)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d", len(repairs))
	}
	var delivered []byte
	for _, f := range repairs {
		out, _, err := r.Handle(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range out {
			delivered = append(delivered, p[0])
		}
	}
	want := []byte{1, 2, 3, 4}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	if s.Retransmissions != 2 {
		t.Fatalf("retransmissions = %d", s.Retransmissions)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	s := NewSender(8)
	r := NewReceiver(8)
	f, _, _ := s.Next([]byte("x"))
	if _, _, err := r.Handle(f); err != nil {
		t.Fatal(err)
	}
	out, nak, err := r.Handle(f)
	if err != nil || out != nil || nak != nil {
		t.Fatalf("duplicate produced output: %v %v %v", out, nak, err)
	}
	if r.Duplicates != 1 {
		t.Fatalf("duplicates = %d", r.Duplicates)
	}
}

func TestWindowEviction(t *testing.T) {
	s := NewSender(2)
	for i := 0; i < 5; i++ {
		if _, _, err := s.Next([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	nak, _ := (&Message{Type: TypeNAK, Ranges: []Range{{0, 2}}}).Marshal()
	nm, _ := Unmarshal(nak)
	repairs, err := s.HandleNAK(nm)
	if err != nil {
		t.Fatal(err)
	}
	// Only seqs 3,4 are retained (window 2); 0..2 unrecoverable.
	if len(repairs) != 0 {
		t.Fatalf("repairs = %d, want 0", len(repairs))
	}
	if s.UnrecoverableNAKs != 3 {
		t.Fatalf("unrecoverable = %d", s.UnrecoverableNAKs)
	}
}

// TestQuickLossyReorderingRecovers: under arbitrary loss and
// reordering with repeated NAK/repair rounds, every payload is
// eventually delivered exactly once, in order.
func TestQuickLossyReorderingRecovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		s := NewSender(n + 1)
		r := NewReceiver(n + 1)
		var inFlight [][]byte
		for i := 0; i < n; i++ {
			frame, _, err := s.Next([]byte(fmt.Sprintf("m%d", i)))
			if err != nil {
				return false
			}
			if rng.Float64() < 0.3 {
				continue // lost
			}
			inFlight = append(inFlight, frame)
		}
		rng.Shuffle(len(inFlight), func(i, j int) { inFlight[i], inFlight[j] = inFlight[j], inFlight[i] })

		var delivered []string
		var lastNAK []byte
		process := func(frames [][]byte) {
			for _, fr := range frames {
				out, nak, err := r.Handle(fr)
				if err != nil {
					return
				}
				for _, p := range out {
					delivered = append(delivered, string(p))
				}
				if nak != nil {
					lastNAK = nak
				}
			}
		}
		process(inFlight)
		// NAK/repair rounds until quiescent (bounded).
		for round := 0; round < n+2 && len(delivered) < n; round++ {
			if lastNAK == nil {
				// Tail loss: no later frame triggered a NAK. Model the
				// PGM heartbeat: the sender re-announces its tail so
				// the receiver can NAK it.
				if r.Next() < uint32(n) {
					nm := &Message{Type: TypeNAK, Ranges: []Range{{r.Next(), uint32(n - 1)}}}
					b, _ := nm.Marshal()
					lastNAK = b
				} else {
					break
				}
			}
			nm, err := Unmarshal(lastNAK)
			if err != nil {
				return false
			}
			lastNAK = nil
			repairs, err := s.HandleNAK(nm)
			if err != nil {
				return false
			}
			process(repairs)
		}
		if len(delivered) != n {
			return false
		}
		for i, p := range delivered {
			if p != fmt.Sprintf("m%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorFloors(t *testing.T) {
	s := NewSender(0)
	if s.WindowSize != 1 {
		t.Fatalf("window = %d", s.WindowSize)
	}
	r := NewReceiver(-3)
	if r.MaxPending != 1 {
		t.Fatalf("maxPending = %d", r.MaxPending)
	}
	// With a 1-deep reorder buffer, an out-of-order frame fills it and
	// later gaps trigger NAKs without deadlocking.
	sn := NewSender(8)
	f0, _, _ := sn.Next([]byte{0})
	f1, _, _ := sn.Next([]byte{1})
	f2, _, _ := sn.Next([]byte{2})
	_ = f0
	if _, nak, err := r.Handle(f2); err != nil || nak == nil {
		t.Fatalf("gap not NAKed: %v", err)
	}
	// Buffer full: frame dropped but still NAKed.
	out, nak, err := r.Handle(f1)
	if err != nil || len(out) != 0 || nak == nil {
		t.Fatalf("full-buffer handling: out=%v nak=%v err=%v", out, nak, err)
	}
}
