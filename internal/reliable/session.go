package reliable

import (
	"errors"
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

// DefaultNAKRetryBudget bounds the repair rounds per ingest/flush when
// Session.NAKRetryBudget is zero. Each round that loses its NAK or its
// RDATA consumes one unit; under loss probability p the chance of
// exhausting the budget is ~p^64.
const DefaultNAKRetryBudget = 64

// Session couples one sender's reliable stream with the per-receiver
// reassembly state, transporting DATA over Elmo multicast and
// NAK/RDATA over ordinary unicast — the PGM deployment shape on an
// Elmo fabric.
type Session struct {
	fab    *fabric.Fabric
	addr   dataplane.GroupAddr
	sender topology.HostID

	s         *Sender
	receivers map[topology.HostID]*Receiver
	delivered map[topology.HostID][][]byte

	// LossInjector, when non-nil, decides whether a receiver's copy of
	// a DATA frame is dropped before reassembly — the test hook
	// standing in for transient congestion or reconfiguration loss.
	LossInjector func(h topology.HostID, seq uint32) bool

	// ControlLoss, when non-nil, decides whether a NAK or RDATA unicast
	// (msgType TypeNAK / TypeRData) from one host to another is lost in
	// flight. The repair loop retries lost control traffic within
	// NAKRetryBudget instead of wedging.
	ControlLoss func(msgType uint8, from, to topology.HostID) bool

	// NAKRetryBudget bounds repair rounds per ingest/flush (zero means
	// DefaultNAKRetryBudget); BackoffFn, when non-nil, is called before
	// each retry with the attempt number (1-based) — wall-clock pacing
	// on live tiers, a no-op on the synchronous fabric.
	NAKRetryBudget int
	BackoffFn      func(attempt int)

	// NAKs counts repair requests processed; NAKRetries counts repair
	// rounds retried after control loss; ControlDrops counts NAK/RDATA
	// unicasts ControlLoss ate; CorruptFrames counts undecodable frames
	// treated as loss; UnicastFallbacks counts publishes that degraded
	// to per-receiver unicast because no multicast sender flow was
	// installed (§3.3 failure degradation).
	NAKs             int
	NAKRetries       int
	ControlDrops     int
	CorruptFrames    int
	UnicastFallbacks int

	// Metrics, when non-nil, mirrors the counters above (plus RDATA
	// retransmits) into a telemetry registry as events happen.
	Metrics *Metrics
}

// dropControl applies ControlLoss to one control unicast.
func (sess *Session) dropControl(msgType uint8, from, to topology.HostID) bool {
	if sess.ControlLoss != nil && sess.ControlLoss(msgType, from, to) {
		sess.ControlDrops++
		sess.Metrics.onControlDrop()
		return true
	}
	return false
}

// retryBudget returns the effective repair-round bound.
func (sess *Session) retryBudget() int {
	if sess.NAKRetryBudget > 0 {
		return sess.NAKRetryBudget
	}
	return DefaultNAKRetryBudget
}

// NewSession builds the session for an installed group. The group must
// already be installed in the fabric (sender flow + receiver filters).
func NewSession(fab *fabric.Fabric, ctrl *controller.Controller, key controller.GroupKey, sender topology.HostID, window int) (*Session, error) {
	g := ctrl.Group(key)
	if g == nil {
		return nil, fmt.Errorf("reliable: group %v not found", key)
	}
	sess := &Session{
		fab:       fab,
		addr:      dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group},
		sender:    sender,
		s:         NewSender(window),
		receivers: make(map[topology.HostID]*Receiver),
		delivered: make(map[topology.HostID][][]byte),
	}
	for _, h := range g.Receivers() {
		if h == sender {
			continue
		}
		sess.receivers[h] = NewReceiver(window)
	}
	return sess, nil
}

// Publish multicasts one payload and runs reassembly (and any repair
// rounds) for every receiver. When the sender has no multicast flow
// installed (the controller found no failure-free path and left the
// group degraded, §3.3), the publish falls back to per-receiver
// unicast so the stream stays live until repair.
func (sess *Session) Publish(payload []byte) error {
	frame, seq, err := sess.s.Next(payload)
	if err != nil {
		return err
	}
	d, err := sess.fab.Send(sess.sender, sess.addr, frame)
	if errors.Is(err, dataplane.ErrNoSenderFlow) {
		sess.UnicastFallbacks++
		sess.Metrics.onFallback()
		for h := range sess.receivers {
			if sess.LossInjector != nil && sess.LossInjector(h, seq) {
				continue
			}
			if _, err := sess.fab.SendUnicast(sess.sender, []topology.HostID{h}, frame); err != nil {
				return err
			}
			if err := sess.ingest(h, frame); err != nil {
				return err
			}
		}
		return nil
	}
	if err != nil {
		return err
	}
	for h := range sess.receivers {
		inner, ok := d.Received[h]
		if !ok {
			continue // copy lost in the fabric; recovered on a later publish
		}
		if sess.LossInjector != nil && sess.LossInjector(h, seq) {
			continue
		}
		if err := sess.ingest(h, inner); err != nil {
			return err
		}
	}
	return nil
}

// ingest feeds one frame to a receiver and services resulting NAKs
// with unicast repairs until the receiver is quiescent. Undecodable
// frames (chaos corruption that survived switch parsing) count as
// loss: a later in-order frame reopens the gap and repair recovers it.
func (sess *Session) ingest(h topology.HostID, frame []byte) error {
	r := sess.receivers[h]
	out, nak, err := r.Handle(frame)
	if err != nil {
		sess.CorruptFrames++
		sess.Metrics.onCorrupt()
		return nil
	}
	sess.delivered[h] = append(sess.delivered[h], out...)
	return sess.repair(h, nak)
}

// repair runs NAK/RDATA rounds for one receiver until its reorder
// buffer drains or the retry budget is exhausted. A round whose NAK is
// lost retransmits the same NAK; a round whose RDATA is lost rebuilds
// the NAK from the receiver's outstanding gaps — both consume budget
// and invoke BackoffFn, so a single lost control frame can no longer
// wedge recovery.
func (sess *Session) repair(h topology.HostID, nak []byte) error {
	r := sess.receivers[h]
	budget := sess.retryBudget()
	for attempt := 1; nak != nil && attempt <= budget; attempt++ {
		// NAK travels to the sender as unicast...
		if sess.dropControl(TypeNAK, h, sess.sender) {
			sess.NAKRetries++
			sess.Metrics.onNAKRetry()
			if sess.BackoffFn != nil {
				sess.BackoffFn(attempt)
			}
			continue
		}
		if _, err := sess.fab.SendUnicast(h, []topology.HostID{sess.sender}, nak); err != nil {
			return err
		}
		sess.NAKs++
		sess.Metrics.onNAK()
		nm, err := Unmarshal(nak)
		if err != nil {
			return err
		}
		repairs, err := sess.s.HandleNAK(nm)
		if err != nil {
			return err
		}
		if len(repairs) == 0 {
			return nil // window evicted: unrecoverable, stop asking
		}
		for _, rd := range repairs {
			// ...and each repair returns as unicast RDATA.
			if sess.dropControl(TypeRData, sess.sender, h) {
				continue
			}
			if _, err := sess.fab.SendUnicast(sess.sender, []topology.HostID{h}, rd); err != nil {
				return err
			}
			sess.Metrics.onRetransmit()
			out, _, err := r.Handle(rd)
			if err != nil {
				sess.CorruptFrames++
				sess.Metrics.onCorrupt()
				continue
			}
			sess.delivered[h] = append(sess.delivered[h], out...)
		}
		// Rebuild from actual receiver state: covers RDATA loss without
		// trusting the per-frame NAK hints.
		if nak = r.OutstandingNAK(); nak != nil {
			sess.NAKRetries++
			sess.Metrics.onNAKRetry()
			if sess.BackoffFn != nil {
				sess.BackoffFn(attempt)
			}
		}
	}
	return nil
}

// Flush performs a final repair round for receivers with tail losses
// (the PGM heartbeat): the sender re-announces its high-water mark and
// services the resulting NAKs.
func (sess *Session) Flush() error {
	high := sess.s.nextSeq
	if high == 0 {
		return nil
	}
	for h, r := range sess.receivers {
		for attempt := 1; r.Next() < high && attempt <= sess.retryBudget(); attempt++ {
			nm := &Message{Type: TypeNAK, Ranges: []Range{{r.Next(), high - 1}}}
			frame, err := nm.Marshal()
			if err != nil {
				return err
			}
			if sess.dropControl(TypeNAK, h, sess.sender) {
				sess.NAKRetries++
				sess.Metrics.onNAKRetry()
				if sess.BackoffFn != nil {
					sess.BackoffFn(attempt)
				}
				continue
			}
			if _, err := sess.fab.SendUnicast(h, []topology.HostID{sess.sender}, frame); err != nil {
				return err
			}
			sess.NAKs++
			sess.Metrics.onNAK()
			repairs, err := sess.s.HandleNAK(nm)
			if err != nil {
				return err
			}
			if len(repairs) == 0 {
				break // window evicted: unrecoverable
			}
			progressed := false
			for _, rd := range repairs {
				if sess.dropControl(TypeRData, sess.sender, h) {
					continue
				}
				if _, err := sess.fab.SendUnicast(sess.sender, []topology.HostID{h}, rd); err != nil {
					return err
				}
				sess.Metrics.onRetransmit()
				out, _, err := r.Handle(rd)
				if err != nil {
					sess.CorruptFrames++
					sess.Metrics.onCorrupt()
					continue
				}
				sess.delivered[h] = append(sess.delivered[h], out...)
				progressed = progressed || len(out) > 0
			}
			if r.Next() < high && !progressed {
				sess.NAKRetries++
				sess.Metrics.onNAKRetry()
				if sess.BackoffFn != nil {
					sess.BackoffFn(attempt)
				}
			}
		}
	}
	return nil
}

// Delivered returns the in-order payloads a receiver has consumed.
func (sess *Session) Delivered(h topology.HostID) [][]byte { return sess.delivered[h] }
