package reliable

import (
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

// Session couples one sender's reliable stream with the per-receiver
// reassembly state, transporting DATA over Elmo multicast and
// NAK/RDATA over ordinary unicast — the PGM deployment shape on an
// Elmo fabric.
type Session struct {
	fab    *fabric.Fabric
	addr   dataplane.GroupAddr
	sender topology.HostID

	s         *Sender
	receivers map[topology.HostID]*Receiver
	delivered map[topology.HostID][][]byte

	// LossInjector, when non-nil, decides whether a receiver's copy of
	// a DATA frame is dropped before reassembly — the test hook
	// standing in for transient congestion or reconfiguration loss.
	LossInjector func(h topology.HostID, seq uint32) bool

	// NAKs counts repair requests processed.
	NAKs int
}

// NewSession builds the session for an installed group. The group must
// already be installed in the fabric (sender flow + receiver filters).
func NewSession(fab *fabric.Fabric, ctrl *controller.Controller, key controller.GroupKey, sender topology.HostID, window int) (*Session, error) {
	g := ctrl.Group(key)
	if g == nil {
		return nil, fmt.Errorf("reliable: group %v not found", key)
	}
	sess := &Session{
		fab:       fab,
		addr:      dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group},
		sender:    sender,
		s:         NewSender(window),
		receivers: make(map[topology.HostID]*Receiver),
		delivered: make(map[topology.HostID][][]byte),
	}
	for _, h := range g.Receivers() {
		if h == sender {
			continue
		}
		sess.receivers[h] = NewReceiver(window)
	}
	return sess, nil
}

// Publish multicasts one payload and runs reassembly (and any repair
// rounds) for every receiver.
func (sess *Session) Publish(payload []byte) error {
	frame, seq, err := sess.s.Next(payload)
	if err != nil {
		return err
	}
	d, err := sess.fab.Send(sess.sender, sess.addr, frame)
	if err != nil {
		return err
	}
	for h := range sess.receivers {
		inner, ok := d.Received[h]
		if !ok {
			continue // copy lost in the fabric; recovered on a later publish
		}
		if sess.LossInjector != nil && sess.LossInjector(h, seq) {
			continue
		}
		if err := sess.ingest(h, inner); err != nil {
			return err
		}
	}
	return nil
}

// ingest feeds one frame to a receiver and services resulting NAKs
// with unicast repairs until the receiver is quiescent.
func (sess *Session) ingest(h topology.HostID, frame []byte) error {
	r := sess.receivers[h]
	out, nak, err := r.Handle(frame)
	if err != nil {
		return err
	}
	sess.delivered[h] = append(sess.delivered[h], out...)
	for rounds := 0; nak != nil && rounds < 64; rounds++ {
		// NAK travels to the sender as unicast...
		if _, err := sess.fab.SendUnicast(h, []topology.HostID{sess.sender}, nak); err != nil {
			return err
		}
		sess.NAKs++
		nm, err := Unmarshal(nak)
		if err != nil {
			return err
		}
		repairs, err := sess.s.HandleNAK(nm)
		if err != nil {
			return err
		}
		nak = nil
		for _, rd := range repairs {
			// ...and each repair returns as unicast RDATA.
			if _, err := sess.fab.SendUnicast(sess.sender, []topology.HostID{h}, rd); err != nil {
				return err
			}
			out, n2, err := r.Handle(rd)
			if err != nil {
				return err
			}
			sess.delivered[h] = append(sess.delivered[h], out...)
			if n2 != nil {
				nak = n2
			}
		}
	}
	return nil
}

// Flush performs a final repair round for receivers with tail losses
// (the PGM heartbeat): the sender re-announces its high-water mark and
// services the resulting NAKs.
func (sess *Session) Flush() error {
	high := sess.s.nextSeq
	if high == 0 {
		return nil
	}
	for h, r := range sess.receivers {
		for rounds := 0; r.Next() < high && rounds < 64; rounds++ {
			nm := &Message{Type: TypeNAK, Ranges: []Range{{r.Next(), high - 1}}}
			frame, err := nm.Marshal()
			if err != nil {
				return err
			}
			if _, err := sess.fab.SendUnicast(h, []topology.HostID{sess.sender}, frame); err != nil {
				return err
			}
			sess.NAKs++
			repairs, err := sess.s.HandleNAK(nm)
			if err != nil {
				return err
			}
			if len(repairs) == 0 {
				break // window evicted: unrecoverable
			}
			for _, rd := range repairs {
				if _, err := sess.fab.SendUnicast(sess.sender, []topology.HostID{h}, rd); err != nil {
					return err
				}
				out, _, err := r.Handle(rd)
				if err != nil {
					return err
				}
				sess.delivered[h] = append(sess.delivered[h], out...)
			}
		}
	}
	return nil
}

// Delivered returns the in-order payloads a receiver has consumed.
func (sess *Session) Delivered(h topology.HostID) [][]byte { return sess.delivered[h] }
