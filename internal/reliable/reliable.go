// Package reliable layers PGM-style NAK-based reliable delivery on top
// of Elmo's best-effort multicast (paper §7, Reliability: "multicast
// protocols like PGM and SRM may be layered on top of Elmo to support
// applications that require reliable delivery").
//
// The sender stamps every multicast payload with a sequence number and
// retains a retransmission window. Receivers deliver in order, detect
// gaps, and respond with NAKs listing the missing ranges; the sender
// answers each NAK with unicast repair data (RDATA) to the NAKing
// receiver, exactly PGM's recovery shape. All control and repair
// traffic is ordinary unicast — the multicast fabric stays stateless.
package reliable

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Wire message types.
const (
	// TypeData is an original multicast payload.
	TypeData = 1
	// TypeNAK is a receiver's repair request (unicast to the sender).
	TypeNAK = 2
	// TypeRData is retransmitted data (unicast to the NAKer).
	TypeRData = 3
)

const (
	magic      = 0xE7
	headerSize = 6 // magic, type, seq
	// maxNAKRanges bounds one NAK message.
	maxNAKRanges = 60
)

// Range is an inclusive sequence range [First, Last].
type Range struct {
	First, Last uint32
}

// Message is a decoded reliable-layer frame.
type Message struct {
	Type    uint8
	Seq     uint32  // DATA/RDATA sequence
	Ranges  []Range // NAK ranges
	Payload []byte  // DATA/RDATA payload
}

// Marshal encodes a message.
func (m *Message) Marshal() ([]byte, error) {
	switch m.Type {
	case TypeData, TypeRData:
		b := make([]byte, headerSize+len(m.Payload))
		b[0], b[1] = magic, m.Type
		binary.BigEndian.PutUint32(b[2:], m.Seq)
		copy(b[headerSize:], m.Payload)
		return b, nil
	case TypeNAK:
		if len(m.Ranges) == 0 || len(m.Ranges) > maxNAKRanges {
			return nil, fmt.Errorf("reliable: NAK with %d ranges", len(m.Ranges))
		}
		b := make([]byte, 3+8*len(m.Ranges))
		b[0], b[1], b[2] = magic, TypeNAK, byte(len(m.Ranges))
		off := 3
		for _, r := range m.Ranges {
			binary.BigEndian.PutUint32(b[off:], r.First)
			binary.BigEndian.PutUint32(b[off+4:], r.Last)
			off += 8
		}
		return b, nil
	default:
		return nil, fmt.Errorf("reliable: unknown type %d", m.Type)
	}
}

// Unmarshal decodes a frame.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 2 || b[0] != magic {
		return nil, fmt.Errorf("reliable: bad frame")
	}
	switch b[1] {
	case TypeData, TypeRData:
		if len(b) < headerSize {
			return nil, fmt.Errorf("reliable: truncated data frame")
		}
		return &Message{Type: b[1], Seq: binary.BigEndian.Uint32(b[2:]), Payload: b[headerSize:]}, nil
	case TypeNAK:
		if len(b) < 3 {
			return nil, fmt.Errorf("reliable: truncated NAK")
		}
		n := int(b[2])
		if n == 0 || n > maxNAKRanges || len(b) < 3+8*n {
			return nil, fmt.Errorf("reliable: malformed NAK")
		}
		ranges := make([]Range, n)
		off := 3
		for i := range ranges {
			ranges[i] = Range{
				First: binary.BigEndian.Uint32(b[off:]),
				Last:  binary.BigEndian.Uint32(b[off+4:]),
			}
			if ranges[i].Last < ranges[i].First {
				return nil, fmt.Errorf("reliable: inverted NAK range")
			}
			off += 8
		}
		return &Message{Type: TypeNAK, Ranges: ranges}, nil
	default:
		return nil, fmt.Errorf("reliable: unknown type %d", b[1])
	}
}

// Sender is the reliable-layer state for one (group, sender) stream.
// It is not safe for concurrent use.
type Sender struct {
	nextSeq uint32
	window  map[uint32][]byte
	// WindowSize bounds retained payloads; older entries are evicted
	// and become unrecoverable (the receiver surfaces a loss event).
	WindowSize int
	// Retransmissions counts RDATA frames produced.
	Retransmissions int
	// UnrecoverableNAKs counts NAK ranges that fell off the window.
	UnrecoverableNAKs int
}

// NewSender creates a sender with the given retransmission window.
func NewSender(windowSize int) *Sender {
	if windowSize < 1 {
		windowSize = 1
	}
	return &Sender{window: make(map[uint32][]byte), WindowSize: windowSize}
}

// Next wraps a payload as the next DATA frame, retaining it for
// repair.
func (s *Sender) Next(payload []byte) ([]byte, uint32, error) {
	seq := s.nextSeq
	s.nextSeq++
	kept := make([]byte, len(payload))
	copy(kept, payload)
	s.window[seq] = kept
	if evict := int(seq) - s.WindowSize + 1; evict >= 0 {
		delete(s.window, uint32(evict))
	}
	frame, err := (&Message{Type: TypeData, Seq: seq, Payload: payload}).Marshal()
	return frame, seq, err
}

// HandleNAK produces the RDATA frames answering a NAK.
func (s *Sender) HandleNAK(nak *Message) ([][]byte, error) {
	if nak.Type != TypeNAK {
		return nil, fmt.Errorf("reliable: not a NAK")
	}
	var out [][]byte
	for _, r := range nak.Ranges {
		for seq := r.First; ; seq++ {
			payload, ok := s.window[seq]
			if !ok {
				s.UnrecoverableNAKs++
			} else {
				frame, err := (&Message{Type: TypeRData, Seq: seq, Payload: payload}).Marshal()
				if err != nil {
					return nil, err
				}
				out = append(out, frame)
				s.Retransmissions++
			}
			if seq == r.Last {
				break
			}
		}
	}
	return out, nil
}

// Receiver reassembles one (group, sender) stream in order.
type Receiver struct {
	next    uint32
	pending map[uint32][]byte
	// MaxPending bounds the reorder buffer.
	MaxPending int
	// Duplicates counts frames discarded as already delivered/buffered.
	Duplicates int
}

// NewReceiver creates a receiver.
func NewReceiver(maxPending int) *Receiver {
	if maxPending < 1 {
		maxPending = 1
	}
	return &Receiver{pending: make(map[uint32][]byte), MaxPending: maxPending}
}

// Handle processes a DATA or RDATA frame: it returns the payloads now
// deliverable in order, plus a NAK frame to unicast to the sender if
// gaps are outstanding (nil when the stream is contiguous).
func (r *Receiver) Handle(frame []byte) (deliverable [][]byte, nak []byte, err error) {
	m, err := Unmarshal(frame)
	if err != nil {
		return nil, nil, err
	}
	if m.Type != TypeData && m.Type != TypeRData {
		return nil, nil, fmt.Errorf("reliable: receiver got type %d", m.Type)
	}
	if m.Seq < r.next {
		r.Duplicates++
		return nil, nil, nil
	}
	if _, dup := r.pending[m.Seq]; dup {
		r.Duplicates++
		return nil, nil, nil
	}
	if len(r.pending) >= r.MaxPending {
		// Reorder buffer full: drop (will be NAKed again).
		return nil, r.buildNAK(m.Seq), nil
	}
	buf := make([]byte, len(m.Payload))
	copy(buf, m.Payload)
	r.pending[m.Seq] = buf
	for {
		p, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		deliverable = append(deliverable, p)
		r.next++
	}
	if len(r.pending) > 0 {
		return deliverable, r.buildNAK(maxSeq(r.pending)), nil
	}
	return deliverable, nil, nil
}

// buildNAK lists the missing ranges in [r.next, highest].
func (r *Receiver) buildNAK(highest uint32) []byte {
	var ranges []Range
	have := make([]uint32, 0, len(r.pending))
	for s := range r.pending {
		have = append(have, s)
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	cursor := r.next
	for _, s := range have {
		if s > cursor {
			ranges = append(ranges, Range{First: cursor, Last: s - 1})
		}
		if s >= cursor {
			cursor = s + 1
		}
	}
	if cursor <= highest {
		ranges = append(ranges, Range{First: cursor, Last: highest})
	}
	if len(ranges) == 0 {
		return nil
	}
	if len(ranges) > maxNAKRanges {
		ranges = ranges[:maxNAKRanges]
	}
	frame, err := (&Message{Type: TypeNAK, Ranges: ranges}).Marshal()
	if err != nil {
		return nil
	}
	return frame
}

// OutstandingNAK rebuilds the NAK for whatever gaps the receiver still
// has (nil when the stream is contiguous). It is the recovery path
// after a lost RDATA: the repair loop re-requests instead of wedging
// on a NAK that was answered with frames that never arrived.
func (r *Receiver) OutstandingNAK() []byte {
	if len(r.pending) == 0 {
		return nil
	}
	return r.buildNAK(maxSeq(r.pending))
}

// Next reports the next in-order sequence the receiver expects.
func (r *Receiver) Next() uint32 { return r.next }

// Pending reports the reorder-buffer occupancy.
func (r *Receiver) Pending() int { return len(r.pending) }

func maxSeq(m map[uint32][]byte) uint32 {
	var hi uint32
	for s := range m {
		if s > hi {
			hi = s
		}
	}
	return hi
}
