package elmo_test

import (
	"fmt"
	"log"

	"elmo"
)

// Example builds the paper's Figure 3 fabric, creates a multicast
// group spanning three pods, and sends one packet — the minimal
// end-to-end use of the public API.
func Example() {
	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}
	key := elmo.GroupKey{Tenant: 1, Group: 1}
	err = cl.CreateGroup(key, map[elmo.HostID]elmo.Role{
		0:  elmo.RoleBoth,     // Ha, the sender
		1:  elmo.RoleReceiver, // Hb, same rack
		40: elmo.RoleReceiver, // Hk, another pod
		63: elmo.RoleReceiver, // Hp, a third pod
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := cl.Send(0, key, []byte("hello, multicast"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered to %d receivers, %d duplicates, %d lost\n",
		len(d.Received), d.Duplicates, d.Lost)
	// Output: delivered to 3 receivers, 0 duplicates, 0 lost
}
