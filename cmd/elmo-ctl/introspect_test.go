package main

import (
	"strings"
	"testing"

	"elmo"
	"elmo/internal/obs"
	"elmo/internal/telemetry"
)

// TestIntrospectAgainstLivePlane runs the introspect client against a
// real ops plane: cluster, traffic, telemetry server, then every
// subcommand end to end.
func TestIntrospectAgainstLivePlane(t *testing.T) {
	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	key := elmo.GroupKey{Tenant: 1, Group: 1}
	members := map[elmo.HostID]elmo.Role{0: elmo.RoleBoth, 1: elmo.RoleBoth, 40: elmo.RoleBoth}
	if err := cl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	plane := obs.New(obs.Options{Topology: cl.Topo, Registry: reg, Controller: cl.Ctrl})
	cl.Fab.SetObserver(plane)
	plane.Enable()
	srv, err := telemetry.Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	plane.Mount(srv)

	for i := 0; i < 3; i++ {
		if _, err := cl.Send(0, key, []byte("introspect probe")); err != nil {
			t.Fatal(err)
		}
	}

	run := func(args ...string) string {
		t.Helper()
		var out strings.Builder
		if err := runIntrospect(append([]string{"-addr", srv.Addr()}, args...), &out); err != nil {
			t.Fatalf("introspect %v: %v\n%s", args, err, out.String())
		}
		return out.String()
	}

	for _, tc := range []struct {
		args []string
		want []string
	}{
		{[]string{"groups"}, []string{"1 groups", "vni=1 group=1", "members=3", "heavy hitters", "~3 pkts"}},
		{[]string{"group", "1", "1"}, []string{"members: 0:both 1:both 40:both", "tree:", "sender headers:", "encoding:"}},
		{[]string{"-n", "3", "links"}, []string{"directed links", "host0->leaf0", "B/s"}},
		{[]string{"controller"}, []string{"1 groups across", "updates: hypervisor="}},
		{[]string{"slo"}, []string{"HEALTHY", "delivery_ratio", "send_latency", "threshold"}},
	} {
		got := run(tc.args...)
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("introspect %v missing %q:\n%s", tc.args, want, got)
			}
		}
	}

	// Error paths: bad subcommand, missing args, unreachable server.
	var sb strings.Builder
	if err := runIntrospect([]string{"-addr", srv.Addr(), "bogus"}, &sb); err == nil {
		t.Error("bogus subcommand accepted")
	}
	if err := runIntrospect([]string{"-addr", srv.Addr(), "group", "1"}, &sb); err == nil {
		t.Error("group without id accepted")
	}
	if err := runIntrospect([]string{"-addr", srv.Addr(), "group", "9", "9"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing group: %v", err)
	}
	if err := runIntrospect([]string{}, &sb); err == nil {
		t.Error("no subcommand accepted")
	}
}
