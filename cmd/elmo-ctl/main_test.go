package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"elmo"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	return &server{cl: cl}
}

func TestDispatchLifecycle(t *testing.T) {
	s := testServer(t)
	steps := []struct {
		cmd      string
		wantOK   bool
		contains string
	}{
		{"help", true, "commands:"},
		{"create 1 1 0:b 1:r 40:b", true, "created with 3 members"},
		{"create 1 1 0:b", false, "already exists"},
		{"show 1 1", true, "3 members"},
		{"send 1 1 0 hello", true, "delivered=2"},
		{"header 1 1 0", true, "u-leaf"},
		{"header 1 1 1", false, "not a sender"},
		{"join 1 1 8 r", true, "join 8 r"},
		{"send 1 1 40 x", true, "delivered=3"},
		{"leave 1 1 8 r", true, "leave 8 r"},
		{"fail spine 0", true, "1 groups impacted"},
		{"send 1 1 0 y", true, "delivered=2"},
		{"repair spine 0", true, "repair spine 0"},
		{"stats", true, "core=0"},
		{"remove 1 1", true, "removed"},
		{"send 1 1 0 z", false, "err"},
		{"bogus", false, "unknown command"},
		{"create 1", false, "need <vni> <group>"},
		{"create 9999999999 1 0:b", false, "bad vni"},
		{"create 1 2 0:x", false, "role must be"},
		{"fail core notanum", false, "err"},
	}
	for _, st := range steps {
		resp := s.dispatch(st.cmd)
		ok := strings.HasSuffix(resp, "\nok") || resp == helpText
		if ok != st.wantOK {
			t.Fatalf("%q: ok=%v, resp=%q", st.cmd, ok, resp)
		}
		if !strings.Contains(resp, st.contains) {
			t.Fatalf("%q: response %q missing %q", st.cmd, resp, st.contains)
		}
	}
}

// TestSessionOverTCP exercises the real network path: a TCP listener,
// a client connection, and the line protocol.
func TestSessionOverTCP(t *testing.T) {
	s := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		s.session(conn, conn)
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := bufio.NewReader(conn)

	send := func(cmd string) string {
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("read after %q: %v", cmd, err)
			}
			out.WriteString(line)
			trimmed := strings.TrimSpace(line)
			if trimmed == "ok" || strings.HasPrefix(trimmed, "err:") || trimmed == "bye" {
				return out.String()
			}
		}
	}

	if resp := send("create 2 5 0:b 40:r"); !strings.Contains(resp, "created") {
		t.Fatalf("create: %q", resp)
	}
	if resp := send("send 2 5 0 over tcp"); !strings.Contains(resp, "delivered=1") {
		t.Fatalf("send: %q", resp)
	}
	if resp := send("bad command here"); !strings.Contains(resp, "err:") {
		t.Fatalf("bad: %q", resp)
	}
	if resp := send("quit"); !strings.Contains(resp, "bye") {
		t.Fatalf("quit: %q", resp)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, _, err := parseKey([]string{"1"}); err == nil {
		t.Fatal("short key accepted")
	}
	if _, _, err := parseKey([]string{"x", "1"}); err == nil {
		t.Fatal("bad vni accepted")
	}
	if _, _, err := parseKey([]string{"1", "y"}); err == nil {
		t.Fatal("bad group accepted")
	}
	key, rest, err := parseKey([]string{"3", "4", "extra"})
	if err != nil || key.Tenant != 3 || key.Group != 4 || len(rest) != 1 {
		t.Fatalf("parseKey = %v %v %v", key, rest, err)
	}
	for s, want := range map[string]elmo.Role{"s": elmo.RoleSender, "r": elmo.RoleReceiver, "b": elmo.RoleBoth} {
		got, err := parseRole(s)
		if err != nil || got != want {
			t.Fatalf("parseRole(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseRole("q"); err == nil {
		t.Fatal("bad role accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testServer(t)
	if resp := s.dispatch("create 3 3 0:b 40:r 63:r"); !strings.Contains(resp, "created") {
		t.Fatalf("create: %q", resp)
	}
	path := t.TempDir() + "/snap.json"
	if resp := s.dispatch("save " + path); !strings.Contains(resp, "saved 1 groups") {
		t.Fatalf("save: %q", resp)
	}
	// A fresh server restores the group and can immediately send.
	s2 := testServer(t)
	if resp := s2.dispatch("load " + path); !strings.Contains(resp, "restored 1 groups") {
		t.Fatalf("load: %q", resp)
	}
	if resp := s2.dispatch("send 3 3 0 after restore"); !strings.Contains(resp, "delivered=2") {
		t.Fatalf("send after restore: %q", resp)
	}
	if resp := s2.dispatch("load /nonexistent/snap.json"); !strings.Contains(resp, "err:") {
		t.Fatalf("bad load: %q", resp)
	}
}
