package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"time"

	"elmo/internal/controller"
	"elmo/internal/obs"
)

// runIntrospect implements `elmo-ctl introspect <what>`: a read-only
// HTTP client for the ops plane served on a telemetry listener
// (elmo-ctl -metrics, elmo-sim -metrics, or any embedding process).
//
//	elmo-ctl introspect [-addr host:port] groups
//	elmo-ctl introspect [-addr host:port] group <vni> <group>
//	elmo-ctl introspect [-addr host:port] [-n 10] links
//	elmo-ctl introspect [-addr host:port] controller
//	elmo-ctl introspect [-addr host:port] slo
func runIntrospect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("introspect", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "localhost:9090", "ops-plane address")
	n := fs.Int("n", 10, "entries to show (links, heavy hitters)")
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: elmo-ctl introspect [-addr host:port] [-n N] groups|group <vni> <gid>|links|controller|slo")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("introspect: need a subcommand")
	}
	c := &introspectClient{base: "http://" + *addr, out: out,
		http: &http.Client{Timeout: 5 * time.Second}}
	switch rest[0] {
	case "groups":
		return c.groups(*n)
	case "group":
		if len(rest) != 3 {
			return fmt.Errorf("introspect group: need <vni> <group>")
		}
		return c.group(rest[1], rest[2])
	case "links":
		return c.links(*n)
	case "controller":
		return c.controller()
	case "slo":
		return c.slo()
	default:
		fs.Usage()
		return fmt.Errorf("introspect: unknown subcommand %q", rest[0])
	}
}

type introspectClient struct {
	base string
	out  io.Writer
	http *http.Client
}

func (c *introspectClient) get(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, string(body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *introspectClient) groups(top int) error {
	var gr obs.GroupsResponse
	if err := c.get(fmt.Sprintf("/debug/elmo/groups?top=%d", top), &gr); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%d groups\n", gr.TotalGroups)
	for _, g := range gr.Groups {
		srules := ""
		if g.UsesSRules {
			srules = " +s-rules"
		}
		exact := "exact"
		if !g.Exact {
			exact = "default"
		}
		fmt.Fprintf(c.out, "  vni=%d group=%d  members=%d (s=%d r=%d)  %s%s\n",
			g.VNI, g.Group, g.Members, g.Senders, g.Receivers, exact, srules)
	}
	if len(gr.HeavyHitters) > 0 {
		fmt.Fprintf(c.out, "heavy hitters (%d packets observed):\n", gr.SketchTotal)
		for _, h := range gr.HeavyHitters {
			fmt.Fprintf(c.out, "  vni=%d group=%d  ~%d pkts (±%d)  %d bytes\n",
				h.VNI, h.Group, h.Count, h.Err, h.Bytes)
		}
	}
	return nil
}

func (c *introspectClient) group(vni, gid string) error {
	var d controller.GroupDetail
	if err := c.get("/debug/elmo/group/"+vni+"/"+gid, &d); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "vni=%d group=%d  members=%d (s=%d r=%d)  exact=%v s-rules=%v R=%d\n",
		d.VNI, d.Group, d.Members, d.Senders, d.Receivers, d.Exact, d.UsesSRules, d.Redundancy)
	fmt.Fprint(c.out, "members:")
	for _, m := range d.MemberList {
		fmt.Fprintf(c.out, " %d:%s", m.Host, m.Role)
	}
	fmt.Fprintln(c.out)
	fmt.Fprintln(c.out, "tree:")
	for _, tl := range d.Tree {
		fmt.Fprintf(c.out, "  leaf %d (pod %d) -> ports %v\n", tl.Leaf, tl.Pod, tl.Ports)
	}
	e := d.Encoding
	fmt.Fprintf(c.out, "encoding: pods=%v  spine p=%d leaf p=%d  spine s=%d leaf s=%d  defaults spine=%v leaf=%v\n",
		e.Pods, e.SpinePRules, e.LeafPRules, e.SpineSRules, e.LeafSRules, e.SpineDefault, e.LeafDefault)
	fmt.Fprintln(c.out, "sender headers:")
	for _, h := range d.Headers {
		if h.Err != "" {
			fmt.Fprintf(c.out, "  host %d: err %s\n", h.Sender, h.Err)
			continue
		}
		fmt.Fprintf(c.out, "  host %d: %d bytes\n", h.Sender, h.Bytes)
	}
	return nil
}

func (c *introspectClient) links(n int) error {
	var lr obs.LinksResponse
	if err := c.get(fmt.Sprintf("/debug/elmo/links?n=%d", n), &lr); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%d directed links; top %d by rate:\n", lr.NumLinks, len(lr.Top))
	for _, l := range lr.Top {
		fmt.Fprintf(c.out, "  %-22s %12.0f B/s  %10d B  %8d pkts\n",
			l.Name, l.BytesSec, l.Bytes, l.Packets)
	}
	return nil
}

func (c *introspectClient) controller() error {
	var ci obs.ControllerResponse
	if err := c.get("/debug/elmo/controller", &ci); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%d groups across %d shards\n", ci.TotalGroups, ci.NumShards)
	fmt.Fprintf(c.out, "updates: hypervisor=%d leaf=%d spine=%d core=%d\n",
		ci.HypervisorUpdates, ci.LeafUpdates, ci.SpineUpdates, ci.CoreUpdates)
	for _, sh := range ci.Shards {
		if sh.Groups > 0 || sh.Updates > 0 {
			fmt.Fprintf(c.out, "  shard %2d: %5d groups  %6d updates\n", sh.Index, sh.Groups, sh.Updates)
		}
	}
	if d := ci.Durable; d != nil {
		fmt.Fprintf(c.out, "durable: epoch=%d wal_lsn=%d snapshot_lsn=%d (lag %d records) leader=%v lease_misses=%d\n",
			d.Epoch, d.WALLSN, d.SnapshotLSN, d.SnapshotLag, d.Leader, d.LeaseMisses)
		if d.FollowersTotal > 0 {
			fmt.Fprintf(c.out, "replication: %d/%d followers current\n", d.FollowersAcked, d.FollowersTotal)
		}
		if d.LeaderErr != "" {
			fmt.Fprintf(c.out, "leader err: %s\n", d.LeaderErr)
		}
		if d.ReplicationErr != "" {
			fmt.Fprintf(c.out, "replication err: %s\n", d.ReplicationErr)
		}
	}
	return nil
}

func (c *introspectClient) slo() error {
	var st obs.SLOStatus
	if err := c.get("/debug/elmo/slo", &st); err != nil {
		return err
	}
	health := "HEALTHY"
	if !st.Healthy {
		health = "UNHEALTHY"
	}
	fmt.Fprintln(c.out, health)
	for _, o := range st.Objectives {
		fmt.Fprintf(c.out, "  %-16s target=%.4f good=%.6f (%d/%d)\n",
			o.Name, o.Target, o.GoodRatio, o.Good, o.Total)
	}
	for _, r := range st.Rules {
		firing := ""
		if r.Firing {
			firing = "  FIRING"
		}
		fmt.Fprintf(c.out, "  %-16s %-6s %s/%s burn %.2f/%.2f (threshold %.1f)%s\n",
			r.Objective, r.Severity, r.Short, r.Long, r.ShortBurn, r.LongBurn, r.Threshold, firing)
	}
	return nil
}
