// Command elmo-ctl is an interactive driver for the Elmo controller
// and emulated fabric: a line-oriented command interface over stdin or
// TCP (mirroring how cloud APIs front the controller, §2). It creates
// groups, changes membership, injects failures, sends packets, and
// prints the controller's view — rule breakdowns, header bytes, and
// update statistics.
//
// Usage:
//
//	elmo-ctl                          # read commands from stdin
//	elmo-ctl -listen :7070            # serve the same protocol over TCP
//	elmo-ctl -metrics :9090           # also serve the ops plane (JSON
//	                                  # introspection, /metrics, health)
//	elmo-ctl introspect [-addr ...] groups|group|links|controller|slo
//	                                  # query a running ops plane
//
// Protocol (one command per line, responses end with "ok" or "err:"):
//
//	create <vni> <group> <host>:<s|r|b> [<host>:<role>...]
//	join   <vni> <group> <host> <s|r|b>
//	leave  <vni> <group> <host> <s|r|b>
//	remove <vni> <group>
//	send   <vni> <group> <sender> <message...>
//	header <vni> <group> <sender>
//	show   <vni> <group>
//	fail   spine|core <id>
//	repair spine|core <id>
//	stats
//	save   <path>            write the controller's soft state as JSON
//	load   <path>            restore groups from a snapshot file
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"elmo"
	"elmo/internal/controller"
	"elmo/internal/header"
	"elmo/internal/obs"
	"elmo/internal/telemetry"
)

func main() {
	// `elmo-ctl introspect ...` is a client of an already-running ops
	// plane; it has its own FlagSet, so dispatch before flag.Parse.
	if len(os.Args) > 1 && os.Args[1] == "introspect" {
		if err := runIntrospect(os.Args[2:], os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		listen  = flag.String("listen", "", "TCP address to serve (empty = stdin)")
		metrics = flag.String("metrics", "", "ops-plane address (/metrics, /debug/elmo/*, health; empty = off)")
		pods    = flag.Int("pods", 4, "pods")
		spines  = flag.Int("spines", 2, "spines per pod")
		leaves  = flag.Int("leaves", 2, "leaves per pod")
		hosts   = flag.Int("hosts", 8, "hosts per leaf")
		cores   = flag.Int("cores", 2, "cores per plane")
		r       = flag.Int("r", 2, "redundancy limit R")
	)
	flag.Parse()

	cl, err := elmo.NewCluster(elmo.TopologyConfig{
		Pods: *pods, SpinesPerPod: *spines, LeavesPerPod: *leaves,
		HostsPerLeaf: *hosts, CoresPerPlane: *cores,
	}, elmo.DefaultConfig(*r))
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{cl: cl}

	if *metrics != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntime(reg)
		plane := obs.New(obs.Options{
			Topology:   cl.Topo,
			Registry:   reg,
			Controller: cl.Ctrl,
		})
		cl.Fab.SetObserver(plane)
		plane.Enable()
		defer plane.StartSampler()()
		tsrv, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer tsrv.Close()
		plane.Mount(tsrv)
		fmt.Printf("ops plane on http://%s (try `elmo-ctl introspect -addr %s groups`)\n",
			tsrv.Addr(), tsrv.Addr())
	}

	if *listen == "" {
		fmt.Printf("elmo-ctl on %s — type 'help'\n", cl.Topo)
		srv.session(os.Stdin, os.Stdout)
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("elmo-ctl serving on %s (%s)", ln.Addr(), cl.Topo)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go func() {
			defer conn.Close()
			srv.session(conn, conn)
		}()
	}
}

// server serializes access to the cluster across sessions.
type server struct {
	mu sync.Mutex
	cl *elmo.Cluster
}

func (s *server) session(in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(out)
	defer w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			fmt.Fprintln(w, "bye")
			w.Flush()
			return
		}
		s.mu.Lock()
		resp := s.dispatch(line)
		s.mu.Unlock()
		fmt.Fprintln(w, resp)
		w.Flush()
	}
}

func (s *server) dispatch(line string) string {
	f := strings.Fields(line)
	var err error
	var out string
	switch f[0] {
	case "help":
		return helpText
	case "create":
		out, err = s.create(f[1:])
	case "join", "leave":
		out, err = s.member(f[0], f[1:])
	case "remove":
		out, err = s.remove(f[1:])
	case "send":
		out, err = s.send(f[1:])
	case "header":
		out, err = s.header(f[1:])
	case "show":
		out, err = s.show(f[1:])
	case "fail", "repair":
		out, err = s.failRepair(f[0], f[1:])
	case "stats":
		out, err = s.stats()
	case "save", "load":
		out, err = s.saveLoad(f[0], f[1:])
	default:
		err = fmt.Errorf("unknown command %q (try 'help')", f[0])
	}
	if err != nil {
		return "err: " + err.Error()
	}
	return out + "\nok"
}

const helpText = `commands:
  create <vni> <group> <host>:<s|r|b> [...]   create a group
  join   <vni> <group> <host> <s|r|b>         add/extend a member
  leave  <vni> <group> <host> <s|r|b>         remove a member role
  remove <vni> <group>                        delete the group
  send   <vni> <group> <sender> <msg...>      multicast a message
  header <vni> <group> <sender>               show the sender's header
  show   <vni> <group>                        show the group encoding
  fail   spine|core <id>                      inject a failure
  repair spine|core <id>                      repair a switch
  stats                                       controller update counters
  save   <path>                               snapshot soft state to JSON
  load   <path>                               restore groups from snapshot
  quit
ok`

func parseKey(f []string) (elmo.GroupKey, []string, error) {
	if len(f) < 2 {
		return elmo.GroupKey{}, nil, fmt.Errorf("need <vni> <group>")
	}
	vni, err := strconv.ParseUint(f[0], 10, 24)
	if err != nil {
		return elmo.GroupKey{}, nil, fmt.Errorf("bad vni: %v", err)
	}
	g, err := strconv.ParseUint(f[1], 10, 24)
	if err != nil {
		return elmo.GroupKey{}, nil, fmt.Errorf("bad group: %v", err)
	}
	return elmo.GroupKey{Tenant: uint32(vni), Group: uint32(g)}, f[2:], nil
}

func parseRole(s string) (elmo.Role, error) {
	switch s {
	case "s":
		return elmo.RoleSender, nil
	case "r":
		return elmo.RoleReceiver, nil
	case "b":
		return elmo.RoleBoth, nil
	}
	return 0, fmt.Errorf("role must be s, r, or b")
}

func (s *server) create(f []string) (string, error) {
	key, rest, err := parseKey(f)
	if err != nil {
		return "", err
	}
	if len(rest) == 0 {
		return "", fmt.Errorf("need at least one <host>:<role>")
	}
	members := make(map[elmo.HostID]elmo.Role, len(rest))
	for _, m := range rest {
		parts := strings.SplitN(m, ":", 2)
		if len(parts) != 2 {
			return "", fmt.Errorf("member %q must be <host>:<role>", m)
		}
		h, err := strconv.Atoi(parts[0])
		if err != nil {
			return "", fmt.Errorf("bad host %q", parts[0])
		}
		role, err := parseRole(parts[1])
		if err != nil {
			return "", err
		}
		members[elmo.HostID(h)] = role
	}
	if err := s.cl.CreateGroup(key, members); err != nil {
		return "", err
	}
	return fmt.Sprintf("group %v created with %d members", key, len(members)), nil
}

func (s *server) member(op string, f []string) (string, error) {
	key, rest, err := parseKey(f)
	if err != nil {
		return "", err
	}
	if len(rest) != 2 {
		return "", fmt.Errorf("need <host> <role>")
	}
	h, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", fmt.Errorf("bad host %q", rest[0])
	}
	role, err := parseRole(rest[1])
	if err != nil {
		return "", err
	}
	if op == "join" {
		err = s.cl.Join(key, elmo.HostID(h), role)
	} else {
		err = s.cl.Leave(key, elmo.HostID(h), role)
	}
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %d %s", op, h, rest[1]), nil
}

func (s *server) remove(f []string) (string, error) {
	key, _, err := parseKey(f)
	if err != nil {
		return "", err
	}
	if err := s.cl.RemoveGroup(key); err != nil {
		return "", err
	}
	return "removed", nil
}

func (s *server) send(f []string) (string, error) {
	key, rest, err := parseKey(f)
	if err != nil {
		return "", err
	}
	if len(rest) < 1 {
		return "", fmt.Errorf("need <sender> [message]")
	}
	h, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", fmt.Errorf("bad sender %q", rest[0])
	}
	msg := strings.Join(rest[1:], " ")
	if msg == "" {
		msg = "ping"
	}
	d, err := s.cl.Send(elmo.HostID(h), key, []byte(msg))
	if err != nil {
		return "", err
	}
	return d.String(), nil
}

func (s *server) header(f []string) (string, error) {
	key, rest, err := parseKey(f)
	if err != nil {
		return "", err
	}
	if len(rest) != 1 {
		return "", fmt.Errorf("need <sender>")
	}
	h, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", err
	}
	hdr, err := s.cl.Ctrl.HeaderFor(key, elmo.HostID(h))
	if err != nil {
		return "", err
	}
	l := header.LayoutFor(s.cl.Topo)
	wire, err := header.Encode(l, hdr)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "header for sender %d: %d bytes on the wire\n", h, len(wire))
	if hdr.ULeaf != nil {
		fmt.Fprintf(&sb, "  u-leaf : down=%s multipath=%v up=%s\n", hdr.ULeaf.Down, hdr.ULeaf.Multipath, hdr.ULeaf.Up)
	}
	if hdr.USpine != nil {
		fmt.Fprintf(&sb, "  u-spine: down=%s multipath=%v up=%s\n", hdr.USpine.Down, hdr.USpine.Multipath, hdr.USpine.Up)
	}
	if hdr.Core != nil {
		fmt.Fprintf(&sb, "  core   : pods=%s\n", hdr.Core)
	}
	for _, r := range hdr.DSpine {
		fmt.Fprintf(&sb, "  d-spine: %s -> pods %v\n", r.Bitmap, r.Switches)
	}
	if hdr.DSpineDefault != nil {
		fmt.Fprintf(&sb, "  d-spine default: %s\n", hdr.DSpineDefault)
	}
	for _, r := range hdr.DLeaf {
		fmt.Fprintf(&sb, "  d-leaf : %s -> leaves %v\n", r.Bitmap, r.Switches)
	}
	if hdr.DLeafDefault != nil {
		fmt.Fprintf(&sb, "  d-leaf default: %s\n", hdr.DLeafDefault)
	}
	return strings.TrimRight(sb.String(), "\n"), nil
}

func (s *server) show(f []string) (string, error) {
	key, _, err := parseKey(f)
	if err != nil {
		return "", err
	}
	g := s.cl.Ctrl.Group(key)
	if g == nil {
		return "", fmt.Errorf("group %v not found", key)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "group %v: %d members (%d senders, %d receivers)\n",
		key, len(g.Members), len(g.Senders()), len(g.Receivers()))
	fmt.Fprintf(&sb, "  exact=%v  spine p-rules=%d  leaf p-rules=%d  spine s-rules=%d  leaf s-rules=%d",
		g.Enc.Exact(), len(g.Enc.DSpine), len(g.Enc.DLeaf), len(g.Enc.SpineSRules), len(g.Enc.LeafSRules))
	return sb.String(), nil
}

func (s *server) failRepair(op string, f []string) (string, error) {
	if len(f) != 2 {
		return "", fmt.Errorf("need spine|core <id>")
	}
	id, err := strconv.Atoi(f[1])
	if err != nil {
		return "", err
	}
	var n int
	switch {
	case f[0] == "spine" && op == "fail":
		n, err = s.cl.FailSpine(elmo.SpineID(id))
	case f[0] == "spine" && op == "repair":
		n, err = s.cl.RepairSpine(elmo.SpineID(id))
	case f[0] == "core" && op == "fail":
		n, err = s.cl.FailCore(elmo.CoreID(id))
	case f[0] == "core" && op == "repair":
		n, err = s.cl.RepairCore(elmo.CoreID(id))
	default:
		return "", fmt.Errorf("need spine|core")
	}
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %s %d: %d groups impacted", op, f[0], id, n), nil
}

func (s *server) saveLoad(op string, f []string) (string, error) {
	if len(f) != 1 {
		return "", fmt.Errorf("need <path>")
	}
	path := f[0]
	if op == "save" {
		file, err := os.Create(path)
		if err != nil {
			return "", err
		}
		defer file.Close()
		if err := s.cl.Ctrl.WriteSnapshot(file); err != nil {
			return "", err
		}
		return fmt.Sprintf("saved %d groups to %s", s.cl.Ctrl.NumGroups(), path), nil
	}
	file, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	snap, err := controller.ReadSnapshot(file)
	if err != nil {
		return "", err
	}
	if err := s.cl.Ctrl.Restore(snap); err != nil {
		return "", err
	}
	// Reinstall every restored group into the data plane.
	for _, key := range s.cl.Ctrl.GroupKeys() {
		if _, err := s.cl.Fab.InstallGroup(s.cl.Ctrl, key); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("restored %d groups from %s", s.cl.Ctrl.NumGroups(), path), nil
}

func (s *server) stats() (string, error) {
	st := s.cl.Ctrl.Stats()
	hv, lf, sp := 0, 0, 0
	for _, v := range st.Hypervisor {
		hv += v
	}
	for _, v := range st.Leaf {
		lf += v
	}
	for _, v := range st.Spine {
		sp += v
	}
	return fmt.Sprintf("updates issued: hypervisor=%d leaf=%d spine=%d core=%d groups=%d",
		hv, lf, sp, st.Core, s.cl.Ctrl.NumGroups()), nil
}
