package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"elmo/internal/cluster"
	"elmo/internal/controller"
	"elmo/internal/topology"
)

// This file is the encode microbenchmark stage: it isolates the group
// encode hot path (tree build + Algorithm 1 clustering) from the
// controller admission machinery the install/churn phases measure, and
// records the allocation profile of the scratch-buffer rewrite against
// the frozen reference implementation (cluster.ReferenceAssign). The
// result is persisted as BENCH_encode.json and doubles as the CI
// bench gate: -max-allocs fails the run when the warm-scratch
// clustering kernel allocates more per op than the checked-in budget.

// BenchStat is one benchmark's per-operation cost triple.
type BenchStat struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

func statOf(r testing.BenchmarkResult) BenchStat {
	return BenchStat{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// EncodeReport is the persisted encode-benchmark record.
type EncodeReport struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"go_maxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"workers"`
	// Groups is the number of receiver sets the throughput phases
	// encode; BenchGroupMembers is the leaf-layer member count of the
	// group the clustering kernels are benchmarked on (the largest
	// sampled group, so the kernel numbers reflect a hard instance).
	Groups            int `json:"groups"`
	BenchGroupMembers int `json:"bench_group_members"`

	// Clustering kernel: frozen reference vs warm-scratch rewrite on
	// the same member set and constraints.
	ReferenceAssign BenchStat `json:"reference_assign"`
	AssignInto      BenchStat `json:"assign_into_warm_scratch"`
	// AllocsReductionFactor is reference allocs/op over rewrite
	// allocs/op (capped at reference allocs/op when the rewrite hits
	// zero).
	AllocsReductionFactor float64 `json:"allocs_reduction_factor"`

	// Full encode (ComputeEncodingInto: tree build + both layers),
	// warm scratch, averaged over all sampled receiver sets.
	Encode BenchStat `json:"encode_warm_scratch"`

	EncodeSerialPerSec   float64 `json:"encode_serial_per_sec"`
	EncodeParallelPerSec float64 `json:"encode_parallel_per_sec"`
	EncodeSpeedup        float64 `json:"encode_speedup"`

	SpeedupReliable bool   `json:"speedup_reliable"`
	SpeedupNote     string `json:"speedup_note,omitempty"`
}

// encodeStage measures the encode hot path over the given specs and
// writes the report to outPath (empty = stdout only). maxAllocs < 0
// disables the gate; otherwise the process exits non-zero when the
// warm-scratch clustering kernel exceeds it.
func encodeStage(topo *topology.Topology, specs []controller.BatchSpec, workers int, outPath string, maxAllocs int64) {
	cfg := controller.PaperConfig(0)
	occ := controller.NewOccupancy(topo, cfg.SRuleCapacity)
	reliable, note := speedupNote()

	rep := &EncodeReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Workers:         workers,
		Groups:          len(specs),
		SpeedupReliable: reliable,
		SpeedupNote:     note,
	}

	// Clustering kernel benchmark: the leaf-layer member set of the
	// largest sampled group, the same instance the encoder hands to
	// cluster.AssignInto.
	members := largestLeafLayer(topo, cfg, specs)
	rep.BenchGroupMembers = len(members)
	cons := cluster.Constraints{
		// R=12 is the paper's largest evaluated redundancy budget: it
		// keeps the p-rule sharing loop (the hot part the rewrite
		// targets) fully engaged instead of degenerating to the exact
		// R=0 fast path.
		R:                12,
		HMax:             cfg.LeafRuleLimit,
		KMax:             cfg.KMaxLeaf,
		HasSRuleCapacity: func(uint16) bool { return true },
	}
	fmt.Printf("benchmarking clustering kernels on a %d-member leaf layer...\n", len(members))
	rep.ReferenceAssign = statOf(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.ReferenceAssign(members, cons)
		}
	}))
	rep.AssignInto = statOf(testing.Benchmark(func(b *testing.B) {
		var s cluster.Scratch
		cluster.AssignInto(members, cons, &s) // warm the scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cluster.AssignInto(members, cons, &s)
		}
	}))
	if rep.AssignInto.AllocsPerOp > 0 {
		rep.AllocsReductionFactor = float64(rep.ReferenceAssign.AllocsPerOp) / float64(rep.AssignInto.AllocsPerOp)
	} else {
		rep.AllocsReductionFactor = float64(rep.ReferenceAssign.AllocsPerOp)
	}

	// Full-encode benchmark: warm scratch, round-robin over the
	// sampled receiver sets so the cost reflects the size mix.
	receivers := make([][]topology.HostID, len(specs))
	for i := range specs {
		receivers[i] = receiversOfMembers(specs[i].Members)
	}
	fmt.Printf("benchmarking full encode over %d receiver sets...\n", len(receivers))
	rep.Encode = statOf(testing.Benchmark(func(b *testing.B) {
		var s controller.EncodeScratch
		cap := occ.CapacityFunc()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := controller.ComputeEncodingInto(topo, cfg, cap, receivers[i%len(receivers)], &s); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Serial vs parallel encode throughput through the batch pipeline
	// (no-op commit: encode cost only, admission excluded).
	noCommit := func(int, *controller.Encoding) error { return nil }
	fmt.Printf("encoding %d receiver sets serially...\n", len(receivers))
	start := time.Now()
	if _, err := controller.EncodeBatch(topo, cfg, controller.NewOccupancy(topo, cfg.SRuleCapacity),
		len(receivers), 1, func(i int) []topology.HostID { return receivers[i] }, noCommit); err != nil {
		log.Fatal(err)
	}
	rep.EncodeSerialPerSec = float64(len(receivers)) / time.Since(start).Seconds()
	fmt.Printf("encoding %d receiver sets with %d workers...\n", len(receivers), workers)
	start = time.Now()
	if _, err := controller.EncodeBatch(topo, cfg, controller.NewOccupancy(topo, cfg.SRuleCapacity),
		len(receivers), workers, func(i int) []topology.HostID { return receivers[i] }, noCommit); err != nil {
		log.Fatal(err)
	}
	rep.EncodeParallelPerSec = float64(len(receivers)) / time.Since(start).Seconds()
	rep.EncodeSpeedup = rep.EncodeParallelPerSec / rep.EncodeSerialPerSec
	if !reliable {
		fmt.Printf("WARNING: %s\n", note)
	}

	buf, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	if outPath != "" {
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}

	if maxAllocs >= 0 {
		if got := rep.AssignInto.AllocsPerOp; got > maxAllocs {
			log.Fatalf("bench gate: warm-scratch AssignInto allocates %d/op, budget is %d/op", got, maxAllocs)
		}
		fmt.Printf("bench gate: warm-scratch AssignInto allocates %d/op (budget %d/op) ok\n",
			rep.AssignInto.AllocsPerOp, maxAllocs)
	}
}

// largestLeafLayer returns the leaf-layer clustering input (one member
// per receiver leaf) of the spec with the most receiver leaves.
func largestLeafLayer(topo *topology.Topology, cfg controller.Config, specs []controller.BatchSpec) []cluster.Member {
	best := -1
	var bestEnc *controller.Encoding
	occ := controller.NewOccupancy(topo, cfg.SRuleCapacity)
	for i := range specs {
		enc, err := controller.ComputeEncoding(topo, cfg, occ.CapacityFunc(), receiversOfMembers(specs[i].Members))
		if err != nil {
			log.Fatal(err)
		}
		if len(enc.LeafPorts) > best {
			best = len(enc.LeafPorts)
			bestEnc = enc
		}
	}
	if bestEnc == nil {
		log.Fatal("no specs to benchmark")
	}
	members := make([]cluster.Member, 0, len(bestEnc.LeafPorts))
	for leaf, ports := range bestEnc.LeafPorts {
		members = append(members, cluster.Member{Switch: uint16(leaf), Ports: ports})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Switch < members[j].Switch })
	return members
}

// receiversOfMembers lists the receiving hosts of a member map in
// ascending order (the order GroupState.Receivers produces).
func receiversOfMembers(members map[topology.HostID]controller.Role) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(members))
	for h, r := range members {
		if r.CanReceive() {
			hosts = append(hosts, h)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// speedupNote reports whether parallel-vs-serial speedup figures are
// meaningful in this environment. With GOMAXPROCS < 2 the "parallel"
// phases time-slice one CPU, so a speedup below 1.0 measures pipeline
// overhead, not parallel scaling — recording it unannotated would be
// misleading (this is exactly how an earlier BENCH_controller.json
// came to claim install_speedup 0.81 on a single-CPU container).
func speedupNote() (reliable bool, note string) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		return false, fmt.Sprintf(
			"GOMAXPROCS=%d: serial and parallel phases share one CPU; speedup figures measure pipeline overhead, not parallel scaling",
			p)
	}
	if n := runtime.NumCPU(); n < 2 {
		return false, fmt.Sprintf(
			"NumCPU=%d: GOMAXPROCS allows parallelism but the host has one CPU; speedup figures measure time-slicing, not parallel scaling",
			n)
	}
	return true, ""
}
