// Command elmo-bench records the controller performance trajectory:
// bulk-install groups/sec and churn events/sec, serial vs parallel,
// written as machine-readable JSON (BENCH_controller.json) so
// regressions are caught against a checked-in baseline.
//
// Usage:
//
//	go run ./cmd/elmo-bench -groups 100000 -out BENCH_controller.json
//	go run ./cmd/elmo-bench -baseline BENCH_baseline.json   # exits 1 on >20% regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// Report is the persisted benchmark record.
type Report struct {
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"go_maxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Workers     int    `json:"workers"` // parallel worker count measured
	Groups      int    `json:"groups"`
	ChurnEvents int    `json:"churn_events"`

	InstallSerialGroupsPerSec   float64 `json:"install_serial_groups_per_sec"`
	InstallParallelGroupsPerSec float64 `json:"install_parallel_groups_per_sec"`
	InstallSpeedup              float64 `json:"install_speedup"`
	InstallRecomputed           int     `json:"install_recomputed"`

	ChurnSerialEventsPerSec   float64 `json:"churn_serial_events_per_sec"`
	ChurnParallelEventsPerSec float64 `json:"churn_parallel_events_per_sec"`
	ChurnSpeedup              float64 `json:"churn_speedup"`

	// SpeedupReliable is false when fewer than two CPUs are actually
	// available (GOMAXPROCS < 2 or NumCPU < 2): the serial and
	// parallel phases then share one CPU and the speedup figures
	// measure pipeline overhead, not parallel scaling. SpeedupNote
	// carries the explanation into the record.
	SpeedupReliable bool   `json:"speedup_reliable"`
	SpeedupNote     string `json:"speedup_note,omitempty"`

	// Scaling is the per-core scaling curve: install and churn
	// throughput re-measured at each requested GOMAXPROCS (points
	// above NumCPU are skipped — they would time-slice, not scale).
	// Speedups are relative to this run's serial phases.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
}

// ScalingPoint is one GOMAXPROCS setting on the scaling curve.
type ScalingPoint struct {
	GoMaxProcs          int     `json:"go_maxprocs"`
	Workers             int     `json:"workers"`
	InstallGroupsPerSec float64 `json:"install_groups_per_sec"`
	InstallSpeedup      float64 `json:"install_speedup"`
	ChurnEventsPerSec   float64 `json:"churn_events_per_sec"`
	ChurnSpeedup        float64 `json:"churn_speedup"`
	// Reliable marks points where the measured speedup reflects real
	// parallel hardware (at least GoMaxProcs CPUs present).
	Reliable bool `json:"reliable"`
}

func main() {
	var (
		groups      = flag.Int("groups", 100000, "groups to bulk-install")
		events      = flag.Int("events", 20000, "churn events to replay")
		workers     = flag.Int("workers", 0, "parallel worker count (0 = NumCPU, floored at 2)")
		out         = flag.String("out", "BENCH_controller.json", "output JSON file (empty = stdout only)")
		baseline    = flag.String("baseline", "", "baseline JSON to compare against (missing file = skip)")
		tolerance   = flag.Float64("tolerance", 0.2, "allowed fractional regression vs baseline")
		verify      = flag.Bool("verify", true, "assert parallel install state is byte-identical to serial")
		metricsAddr = flag.String("metrics", "", "listen address for the /metrics + pprof endpoint (e.g. :9090; empty = no listener)")
		encodeOut   = flag.String("encode-out", "BENCH_encode.json", "encode-stage output JSON file (empty = skip the encode stage)")
		encodeOnly  = flag.Bool("encode-only", false, "run only the encode microbenchmark stage")
		encodeSets  = flag.Int("encode-sets", 2000, "receiver sets the encode stage benchmarks over")
		maxAllocs   = flag.Int64("max-allocs", -1, "fail if warm-scratch AssignInto exceeds this allocs/op (<0 = no gate)")

		dataplaneOut       = flag.String("dataplane-out", "BENCH_dataplane.json", "dataplane-stage output JSON file (empty = skip the stage)")
		dataplaneOnly      = flag.Bool("dataplane-only", false, "run only the data-plane forwarding benchmark stage")
		dataplaneSends     = flag.Int("dataplane-sends", 20000, "sends per sync fan-out phase in the dataplane stage")
		dataplaneUDPSends  = flag.Int("dataplane-udp-sends", 400, "sends for the UDP end-to-end measurement")
		dataplaneMaxAllocs = flag.Int64("dataplane-max-allocs", -1, "fail if warm-scratch ProcessInto exceeds this allocs/packet on any tier (<0 = no gate)")

		durabilityOut    = flag.String("durability-out", "", "durability-stage output JSON file (empty = skip the stage; see -durability-only)")
		durabilityOnly   = flag.Bool("durability-only", false, "run only the durability stage (default output BENCH_durability.json)")
		durabilityGroups = flag.Int("durability-groups", 1000000, "groups for the recovery measurement")
		commitOps        = flag.Int("commit-ops", 20000, "durable ops for the group-commit throughput measurement")
		commitWriters    = flag.Int("commit-writers", 4, "concurrent writers for the group-commit measurement")
		failoverGroups   = flag.Int("failover-groups", 20000, "groups replicated to the warm follower in the failover measurement")

		scaling     = flag.String("scaling", "1,2,4,8", "comma-separated GOMAXPROCS points for the scaling curve (points above NumCPU are skipped; empty = no curve)")
		gateSpeedup = flag.Float64("gate-speedup", -1, "fail unless install and churn speedups reach this value (<0 = no gate; skipped with a notice when NumCPU < 2)")
	)
	flag.Parse()

	// The registry is shared across the benchmark phases; sequential
	// controllers re-register their function gauges (replace contract),
	// so a scrape always reads the live phase.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterRuntime(reg)
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		fmt.Printf("serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}

	// Default the worker count to the machine's CPUs (floored at 2 so
	// the parallel pipeline is always exercised); whether the resulting
	// speedup figures mean anything is recorded by speedupNote.
	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
		if w < 2 {
			w = 2
		}
	}

	if *dataplaneOnly {
		dataplaneStage(*dataplaneSends, *dataplaneUDPSends, *dataplaneOut, *dataplaneMaxAllocs)
		return
	}

	topo := topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 8, CoresPerPlane: 2,
	})
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 80, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: 1, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	gs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: *groups, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	specs := buildSpecs(gs, 7)

	encSpecs := specs
	if len(encSpecs) > *encodeSets {
		encSpecs = encSpecs[:*encodeSets]
	}
	if *encodeOnly {
		encodeStage(topo, encSpecs, w, *encodeOut, *maxAllocs)
		return
	}

	if *durabilityOnly || *durabilityOut != "" {
		dout := *durabilityOut
		if dout == "" {
			dout = "BENCH_durability.json"
		}
		dspecs := specs
		if *durabilityGroups != len(specs) {
			dgs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: *durabilityGroups, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			dspecs = buildSpecs(dgs, 7)
		}
		durabilityStage(topo, dspecs, *commitWriters, *commitOps, *failoverGroups, dout)
		if *durabilityOnly {
			return
		}
	}

	reliable, note := speedupNote()
	rep := &Report{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Workers:         w,
		Groups:          len(specs),
		ChurnEvents:     *events,
		SpeedupReliable: reliable,
		SpeedupNote:     note,
	}
	if !reliable {
		fmt.Printf("WARNING: %s\n", note)
	}

	// Untimed warmup: the first full install grows the GC heap target
	// from its process-start value, which otherwise taxes whichever
	// timed phase happens to run first (measured ~2x on the serial
	// install). All timed phases below run against a warmed heap.
	fmt.Printf("warmup: installing %d groups (untimed)...\n", len(specs))
	install(topo, specs, w, nil)
	runtime.GC()

	fmt.Printf("installing %d groups serially...\n", len(specs))
	serialCtrl, _, secs := install(topo, specs, 1, reg)
	rep.InstallSerialGroupsPerSec = float64(len(specs)) / secs
	fmt.Printf("installing %d groups with %d workers...\n", len(specs), w)
	parCtrl, pres, pcs := install(topo, specs, w, reg)
	rep.InstallParallelGroupsPerSec = float64(len(specs)) / pcs
	rep.InstallRecomputed = pres.Recomputed
	rep.InstallSpeedup = rep.InstallParallelGroupsPerSec / rep.InstallSerialGroupsPerSec

	if *verify {
		fmt.Println("verifying parallel state matches serial...")
		if err := compareState(serialCtrl, parCtrl, specs); err != nil {
			log.Fatalf("determinism violation: %v", err)
		}
	}
	// Drop the install controllers and pay their GC debt now, not
	// inside the first timed churn phase.
	serialCtrl = nil
	parCtrl = nil
	runtime.GC()
	runtime.GC()

	fmt.Printf("replaying %d churn events serially...\n", *events)
	rep.ChurnSerialEventsPerSec = churnRate(topo, dep, gs, *events, 1, reg)
	fmt.Printf("replaying %d churn events with %d workers...\n", *events, w)
	rep.ChurnParallelEventsPerSec = churnRate(topo, dep, gs, *events, w, reg)
	rep.ChurnSpeedup = rep.ChurnParallelEventsPerSec / rep.ChurnSerialEventsPerSec

	if *scaling != "" {
		rep.Scaling = scalingCurve(topo, dep, gs, specs, *events, *scaling, rep, reg)
	}

	buf, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	if *out != "" {
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *baseline != "" {
		if err := checkBaseline(rep, *baseline, *tolerance); err != nil {
			log.Fatal(err)
		}
	}
	if err := gateSpeedups(rep, *gateSpeedup); err != nil {
		log.Fatal(err)
	}

	if *encodeOut != "" {
		encodeStage(topo, encSpecs, w, *encodeOut, *maxAllocs)
	}
	if *dataplaneOut != "" {
		dataplaneStage(*dataplaneSends, *dataplaneUDPSends, *dataplaneOut, *dataplaneMaxAllocs)
	}
}

// scalingCurve re-measures install and churn throughput at each
// requested GOMAXPROCS point (workers = GOMAXPROCS), restoring the
// process setting afterwards. Points above NumCPU are skipped and
// logged — on fewer cores they would measure time-slicing, not
// scaling — so the recorded curve never silently overstates coverage.
func scalingCurve(topo *topology.Topology, dep *placement.Deployment, gs []groupgen.Group,
	specs []controller.BatchSpec, events int, spec string, rep *Report, reg *telemetry.Registry) []ScalingPoint {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var points []ScalingPoint
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, err := strconv.Atoi(tok)
		if err != nil || p < 1 {
			log.Fatalf("bad -scaling point %q", tok)
		}
		if p > runtime.NumCPU() {
			fmt.Printf("scaling: skipping GOMAXPROCS=%d (only %d CPUs)\n", p, runtime.NumCPU())
			continue
		}
		runtime.GOMAXPROCS(p)
		fmt.Printf("scaling: GOMAXPROCS=%d install...\n", p)
		ctrl, _, secs := install(topo, specs, p, reg)
		_ = ctrl
		runtime.GC()
		fmt.Printf("scaling: GOMAXPROCS=%d churn...\n", p)
		crate := churnRate(topo, dep, gs, events, p, reg)
		pt := ScalingPoint{
			GoMaxProcs:          p,
			Workers:             p,
			InstallGroupsPerSec: float64(len(specs)) / secs,
			ChurnEventsPerSec:   crate,
			Reliable:            p >= 2 && runtime.NumCPU() >= p,
		}
		if rep.InstallSerialGroupsPerSec > 0 {
			pt.InstallSpeedup = pt.InstallGroupsPerSec / rep.InstallSerialGroupsPerSec
		}
		if rep.ChurnSerialEventsPerSec > 0 {
			pt.ChurnSpeedup = pt.ChurnEventsPerSec / rep.ChurnSerialEventsPerSec
		}
		points = append(points, pt)
	}
	return points
}

// gateSpeedups enforces a minimum parallel speedup. On hosts without
// real parallelism (NumCPU < 2) the gate is skipped with a notice —
// failing there would punish the environment, not the code; CI runs
// the gate on multi-core runners where the figures are meaningful.
func gateSpeedups(rep *Report, gate float64) error {
	if gate < 0 {
		return nil
	}
	if runtime.NumCPU() < 2 {
		fmt.Printf("speedup gate skipped: only %d CPU available, speedup figures are not meaningful here\n", runtime.NumCPU())
		return nil
	}
	type check struct {
		name    string
		speedup float64
	}
	checks := []check{
		{"install_speedup", rep.InstallSpeedup},
		{"churn_speedup", rep.ChurnSpeedup},
	}
	for _, pt := range rep.Scaling {
		if !pt.Reliable {
			continue
		}
		checks = append(checks,
			check{fmt.Sprintf("scaling[gomaxprocs=%d].install_speedup", pt.GoMaxProcs), pt.InstallSpeedup},
			check{fmt.Sprintf("scaling[gomaxprocs=%d].churn_speedup", pt.GoMaxProcs), pt.ChurnSpeedup})
	}
	var failed []string
	for _, c := range checks {
		status := "ok"
		if c.speedup < gate {
			status = "BELOW GATE"
			failed = append(failed, c.name)
		}
		fmt.Printf("%-44s %6.2fx (gate %.2fx) %s\n", c.name, c.speedup, gate, status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("parallel speedup below %.2fx gate: %s", gate, strings.Join(failed, ", "))
	}
	return nil
}

func buildSpecs(gs []groupgen.Group, seed int64) []controller.BatchSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]controller.BatchSpec, len(gs))
	for gi := range gs {
		g := &gs[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := churn.RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		specs[gi] = controller.BatchSpec{
			Key:     controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID},
			Members: members,
		}
	}
	return specs
}

func install(topo *topology.Topology, specs []controller.BatchSpec, workers int, reg *telemetry.Registry) (*controller.Controller, *controller.BatchResult, float64) {
	ctrl, err := controller.New(topo, controller.PaperConfig(0))
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		ctrl.EnableMetrics(reg)
	}
	runtime.GC() // level the playing field between phases
	start := time.Now()
	res, err := ctrl.InstallBatch(specs, controller.BatchOptions{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	if res.Installed != len(specs) {
		log.Fatalf("installed %d of %d groups", res.Installed, len(specs))
	}
	return ctrl, res, time.Since(start).Seconds()
}

func compareState(a, b *controller.Controller, specs []controller.BatchSpec) error {
	topo := a.Topology()
	for l := 0; l < topo.NumLeaves(); l++ {
		if a.LeafSRuleCount(topology.LeafID(l)) != b.LeafSRuleCount(topology.LeafID(l)) {
			return fmt.Errorf("leaf %d occupancy differs", l)
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		if a.SpineSRuleCount(topology.SpineID(s)) != b.SpineSRuleCount(topology.SpineID(s)) {
			return fmt.Errorf("spine %d occupancy differs", s)
		}
	}
	for _, spec := range specs {
		ga, gb := a.Group(spec.Key), b.Group(spec.Key)
		if ga == nil || gb == nil {
			return fmt.Errorf("group %v missing", spec.Key)
		}
		if !reflect.DeepEqual(ga.Enc, gb.Enc) {
			return fmt.Errorf("group %v encoding differs", spec.Key)
		}
	}
	return nil
}

func churnRate(topo *topology.Topology, dep *placement.Deployment, gs []groupgen.Group, events, workers int, reg *telemetry.Registry) float64 {
	ctrl, err := controller.New(topo, controller.PaperConfig(0))
	if err != nil {
		log.Fatal(err)
	}
	var cm *churn.Metrics
	if reg != nil {
		ctrl.EnableMetrics(reg)
		cm = churn.NewMetrics(reg)
	}
	if err := churn.Setup(ctrl, dep, gs, rand.New(rand.NewSource(7))); err != nil {
		log.Fatal(err)
	}
	runtime.GC() // level the playing field between phases
	start := time.Now()
	res, err := churn.Run(ctrl, dep, gs, churn.Config{
		Events: events, EventsPerSecond: 1000, Seed: 9, Workers: workers,
		Metrics: cm,
	})
	if err != nil {
		log.Fatal(err)
	}
	return float64(res.EventsApplied) / time.Since(start).Seconds()
}

func checkBaseline(rep *Report, path string, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("no baseline at %s; skipping regression check\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.GoMaxProcs != rep.GoMaxProcs {
		return fmt.Errorf(
			"baseline %s was recorded at GOMAXPROCS=%d but this run used GOMAXPROCS=%d; "+
				"throughput is not comparable across core counts — regenerate the baseline on this host "+
				"or rerun with GOMAXPROCS=%d",
			path, base.GoMaxProcs, rep.GoMaxProcs, base.GoMaxProcs)
	}
	type metric struct {
		name       string
		base, curr float64
	}
	checks := []metric{
		{"install_serial_groups_per_sec", base.InstallSerialGroupsPerSec, rep.InstallSerialGroupsPerSec},
		{"install_parallel_groups_per_sec", base.InstallParallelGroupsPerSec, rep.InstallParallelGroupsPerSec},
		{"churn_serial_events_per_sec", base.ChurnSerialEventsPerSec, rep.ChurnSerialEventsPerSec},
		{"churn_parallel_events_per_sec", base.ChurnParallelEventsPerSec, rep.ChurnParallelEventsPerSec},
	}
	failed := false
	for _, m := range checks {
		if m.base <= 0 {
			continue
		}
		drop := 1 - m.curr/m.base
		status := "ok"
		if drop > tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-34s baseline %12.0f current %12.0f (%+.1f%%) %s\n",
			m.name, m.base, m.curr, -100*drop, status)
	}
	if failed {
		return fmt.Errorf("performance regressed more than %.0f%% vs %s", 100*tolerance, path)
	}
	return nil
}
