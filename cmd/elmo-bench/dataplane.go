package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/obs"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
	"elmo/internal/udpfabric"
)

// This file is the data-plane forwarding benchmark stage: it measures
// the batched, allocation-free ProcessInto fast path against the
// frozen reference pipeline (dataplane.ReferenceProcess), end to end
// through the synchronous fabric fan-out and over real UDP sockets.
// The result is persisted as BENCH_dataplane.json and doubles as a CI
// bench gate: -dataplane-max-allocs fails the run when any tier's
// warm-scratch ProcessInto allocates more per packet than the
// checked-in budget.

// DataplaneReport is the persisted forwarding-benchmark record.
type DataplaneReport struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"go_maxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Members is the receiver count of the benchmarked group; INT
	// stamping is enabled so the per-hop header rewrite is exercised.
	Members int `json:"members"`

	// Per-tier switch pipeline cost, one packet per op: the frozen
	// reference pipeline vs warm-scratch ProcessInto on identical
	// packets.
	LeafReference  BenchStat `json:"leaf_reference_process"`
	LeafFast       BenchStat `json:"leaf_process_into_warm_scratch"`
	SpineReference BenchStat `json:"spine_reference_process"`
	SpineFast      BenchStat `json:"spine_process_into_warm_scratch"`
	CoreReference  BenchStat `json:"core_reference_process"`
	CoreFast       BenchStat `json:"core_process_into_warm_scratch"`

	// AllocsPerPacket is the worst warm-scratch ProcessInto allocs/op
	// across the three tiers — the quantity the bench gate budgets.
	AllocsPerPacket int64 `json:"allocs_per_packet"`
	// PerPacketSpeedup is reference ns/op over fast-path ns/op at the
	// leaf (the tier every packet crosses twice).
	PerPacketSpeedup float64 `json:"per_packet_speedup"`

	// Sync fan-out: whole sends through the synchronous fabric, every
	// copy delivered. PacketsPerSec counts switch traversals (hops) —
	// the per-packet work the fast path rewrote — and SendsPerSec
	// whole multicast sends.
	SyncSends                int     `json:"sync_sends"`
	SyncHopsPerSend          float64 `json:"sync_hops_per_send"`
	SyncReferenceSendsPerSec float64 `json:"sync_reference_sends_per_sec"`
	SyncFastSendsPerSec      float64 `json:"sync_fast_sends_per_sec"`
	SyncReferencePktsPerSec  float64 `json:"sync_reference_packets_per_sec"`
	SyncFastPktsPerSec       float64 `json:"sync_fast_packets_per_sec"`
	SyncSpeedup              float64 `json:"sync_speedup"`

	// Forwarding latency distribution of the fast path, read from the
	// ops-plane telemetry histograms over an observed send phase (the
	// observer adds per-link accounting cost, so this phase is timed
	// separately from the speedup phases above).
	P50SendLatencyNanos float64 `json:"p50_send_latency_nanos"`
	P99SendLatencyNanos float64 `json:"p99_send_latency_nanos"`
	P99HopsPerSend      float64 `json:"p99_hops_per_send"`

	// UDP tier: end-to-end over real localhost sockets (marshal →
	// socket → batched reader → parse per hop). CopiesPerSec counts
	// member deliveries; Delivered may fall short of Sends×Members if
	// the kernel drops datagrams under burst (reported, not hidden).
	UDPSends        int     `json:"udp_sends"`
	UDPMembers      int     `json:"udp_members"`
	UDPDelivered    int     `json:"udp_delivered_copies"`
	UDPCopiesPerSec float64 `json:"udp_copies_per_sec"`
}

// dataplaneStage measures the forwarding fast path and writes the
// report to outPath (empty = stdout only). maxAllocs < 0 disables the
// gate; otherwise the process exits non-zero when any tier's
// warm-scratch ProcessInto exceeds it.
func dataplaneStage(sends, udpSends int, outPath string, maxAllocs int64) {
	rep := &DataplaneReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		SyncSends:  sends,
		UDPSends:   udpSends,
	}

	topo := topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 8, CoresPerPlane: 2,
	})
	cfg := controller.PaperConfig(0)
	cfg.EnableINT = true
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 11, Group: 1}
	members := map[topology.HostID]controller.Role{}
	for h := 0; h < topo.NumHosts(); h += 3 {
		members[topology.HostID(h)] = controller.RoleBoth
	}
	members[0] = controller.RoleBoth
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		log.Fatal(err)
	}
	rep.Members = len(members)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	payload := []byte("dataplane-bench-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")

	// Walk one encapsulated packet down the sender's actual path to
	// capture realistic per-tier inputs (leaf → spine → core).
	sender := topology.HostID(0)
	pkt, err := fab.Hypervisors[sender].Encap(addr, payload)
	if err != nil {
		log.Fatal(err)
	}
	leafID := topo.HostLeaf(sender)
	leafSw := fab.Leaves[leafID]
	spinePkt, spinePort := upEmission(leafSw, pkt)
	spineID := topo.LeafUpstream(leafID, spinePort)
	spineSw := fab.Spines[spineID]
	corePkt, corePort := upEmission(spineSw, spinePkt)
	coreSw := fab.Cores[topo.SpineUpstream(spineID, corePort)]

	fmt.Printf("benchmarking switch pipelines (group of %d, INT on)...\n", len(members))
	rep.LeafReference = benchReference(leafSw, pkt)
	rep.LeafFast = benchFast(leafSw, pkt)
	rep.SpineReference = benchReference(spineSw, spinePkt)
	rep.SpineFast = benchFast(spineSw, spinePkt)
	rep.CoreReference = benchReference(coreSw, corePkt)
	rep.CoreFast = benchFast(coreSw, corePkt)
	rep.AllocsPerPacket = rep.LeafFast.AllocsPerOp
	if rep.SpineFast.AllocsPerOp > rep.AllocsPerPacket {
		rep.AllocsPerPacket = rep.SpineFast.AllocsPerOp
	}
	if rep.CoreFast.AllocsPerOp > rep.AllocsPerPacket {
		rep.AllocsPerPacket = rep.CoreFast.AllocsPerOp
	}
	if rep.LeafFast.NsPerOp > 0 {
		rep.PerPacketSpeedup = float64(rep.LeafReference.NsPerOp) / float64(rep.LeafFast.NsPerOp)
	}

	// Sync fan-out: identical send loops, only the processing path
	// differs. The group here is Elmo-typical — sparse (one member per
	// leaf) with INT off — so the measured delta is the switch
	// pipeline, not per-copy telemetry decode at the member
	// hypervisors (a cost both paths share equally). Warmups level the
	// heap between the phases.
	fcfg := controller.PaperConfig(0)
	fctrl, err := controller.New(topo, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	ffab := fabric.New(topo, fcfg.SRuleCapacity)
	ffab.SetFailures(fctrl.Failures())
	fkey := controller.GroupKey{Tenant: 12, Group: 1}
	fmembers := map[topology.HostID]controller.Role{}
	for h := 0; h < topo.NumHosts(); h += topo.Config().HostsPerLeaf {
		fmembers[topology.HostID(h)] = controller.RoleBoth
	}
	if _, err := fctrl.CreateGroup(fkey, fmembers); err != nil {
		log.Fatal(err)
	}
	if _, err := ffab.InstallGroup(fctrl, fkey); err != nil {
		log.Fatal(err)
	}
	faddr := dataplane.GroupAddr{VNI: fkey.Tenant, Group: fkey.Group}

	fmt.Printf("fan-out: %d sends via reference pipeline (group of %d)...\n", sends, len(fmembers))
	ffab.SetReferenceProcessing(true)
	fanout(ffab, sender, faddr, payload, sends/10) // warmup
	runtime.GC()
	refHops, refSecs := fanout(ffab, sender, faddr, payload, sends)
	fmt.Printf("fan-out: %d sends via fast path...\n", sends)
	ffab.SetReferenceProcessing(false)
	fanout(ffab, sender, faddr, payload, sends/10) // warmup
	runtime.GC()
	fastHops, fastSecs := fanout(ffab, sender, faddr, payload, sends)
	rep.SyncHopsPerSend = float64(fastHops) / float64(sends)
	rep.SyncReferenceSendsPerSec = float64(sends) / refSecs
	rep.SyncFastSendsPerSec = float64(sends) / fastSecs
	rep.SyncReferencePktsPerSec = float64(refHops) / refSecs
	rep.SyncFastPktsPerSec = float64(fastHops) / fastSecs
	if rep.SyncReferencePktsPerSec > 0 {
		rep.SyncSpeedup = rep.SyncFastPktsPerSec / rep.SyncReferencePktsPerSec
	}

	// Observed phase: latency percentiles from the ops-plane
	// histograms (fast path only; not part of the speedup figures).
	reg := telemetry.NewRegistry()
	plane := obs.New(obs.Options{Topology: topo, Registry: reg})
	ffab.SetObserver(plane)
	plane.Enable()
	fmt.Printf("fan-out: %d observed sends for latency percentiles...\n", sends/4)
	fanout(ffab, sender, faddr, payload, sends/4)
	plane.Disable()
	ffab.SetObserver(nil)
	lat := reg.Histogram("elmo_obs_send_latency_seconds",
		"Wall-clock fabric forwarding time per send.", telemetry.LatencyBuckets)
	hops := reg.Histogram("elmo_obs_send_hops",
		"Switch traversals per send.", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	rep.P50SendLatencyNanos = lat.Quantile(0.50) * 1e9
	rep.P99SendLatencyNanos = lat.Quantile(0.99) * 1e9
	rep.P99HopsPerSend = hops.Quantile(0.99)

	// UDP tier: smaller topology (one socket per switch and host),
	// paced bursts so localhost buffers are not the thing measured.
	udpStage(rep, udpSends)

	buf, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	if outPath != "" {
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}

	if maxAllocs >= 0 {
		if rep.AllocsPerPacket > maxAllocs {
			log.Fatalf("bench gate: warm-scratch ProcessInto allocates %d/packet, budget is %d/packet",
				rep.AllocsPerPacket, maxAllocs)
		}
		fmt.Printf("bench gate: warm-scratch ProcessInto allocates %d/packet (budget %d/packet) ok\n",
			rep.AllocsPerPacket, maxAllocs)
	}
}

// upEmission processes one packet and returns its upstream emission
// (the input for the next tier up).
func upEmission(sw *dataplane.NetworkSwitch, pkt dataplane.Packet) (dataplane.Packet, int) {
	ems, err := sw.ReferenceProcess(pkt)
	if err != nil {
		log.Fatal(err)
	}
	for _, em := range ems {
		if em.Up {
			return em.Packet, em.Port
		}
	}
	log.Fatal("dataplane stage: no upstream emission; group does not leave the pod")
	return dataplane.Packet{}, 0
}

func benchReference(sw *dataplane.NetworkSwitch, pkt dataplane.Packet) BenchStat {
	return statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sw.ReferenceProcess(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}))
}

func benchFast(sw *dataplane.NetworkSwitch, pkt dataplane.Packet) BenchStat {
	return statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var s dataplane.SwitchScratch
		if _, err := sw.ProcessInto(pkt, &s); err != nil { // warm the scratch
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if _, err := sw.ProcessInto(pkt, &s); err != nil {
				b.Fatal(err)
			}
		}
	}))
}

// fanout drives whole sends through the synchronous fabric and
// returns total switch traversals and elapsed seconds.
func fanout(fab *fabric.Fabric, sender topology.HostID, addr dataplane.GroupAddr, payload []byte, sends int) (hops int, secs float64) {
	start := time.Now()
	for i := 0; i < sends; i++ {
		d, err := fab.Send(sender, addr, payload)
		if err != nil {
			log.Fatal(err)
		}
		hops += d.Hops
	}
	return hops, time.Since(start).Seconds()
}

// udpStage measures end-to-end delivered copies/sec over real UDP
// sockets on the paper's example topology.
func udpStage(rep *DataplaneReport, sends int) {
	if sends <= 0 {
		return // gate runs skip the socket tier (-dataplane-udp-sends 0)
	}
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	key := controller.GroupKey{Tenant: 5, Group: 1}
	members := map[topology.HostID]controller.Role{}
	receivers := []topology.HostID{}
	for h := 0; h < topo.NumHosts(); h += 8 {
		members[topology.HostID(h)] = controller.RoleBoth
		if h != 0 {
			receivers = append(receivers, topology.HostID(h))
		}
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	u, err := udpfabric.New(base)
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()
	if _, err := u.InstallGroup(ctrl, key); err != nil {
		log.Fatal(err)
	}
	u.Start()
	rep.UDPMembers = len(receivers)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	fmt.Printf("udp: %d sends to %d receivers over real sockets...\n", sends, len(receivers))
	start := time.Now()
	for i := 0; i < sends; i++ {
		if err := u.Send(0, addr, []byte("udp-dataplane-bench")); err != nil {
			log.Fatal(err)
		}
		if i%16 == 15 {
			time.Sleep(500 * time.Microsecond) // let readers drain
		}
	}
	delivered := 0
	for _, h := range receivers {
		got, err := u.WaitForDeliveries(h, sends, 5*time.Second)
		if err != nil {
			fmt.Printf("udp: %v (burst loss tolerated)\n", err)
		}
		delivered += len(got)
	}
	secs := time.Since(start).Seconds()
	rep.UDPDelivered = delivered
	rep.UDPCopiesPerSec = float64(delivered) / secs
}
