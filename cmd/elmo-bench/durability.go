package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"elmo/internal/chaos"
	"elmo/internal/controller"
	"elmo/internal/durable"
	"elmo/internal/fabric"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// DurabilityReport is the persisted record of the durability stage:
// group-commit throughput under real fsync, recovery time for a
// full-scale controller, and failover time under chaos.
type DurabilityReport struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"go_maxprocs"`

	// Group commit (real fsync).
	CommitWriters       int     `json:"commit_writers"`
	CommitRecords       int     `json:"commit_records"`
	CommitRecordsPerSec float64 `json:"commit_records_per_sec"`
	CommitBatches       int64   `json:"commit_batches"`
	CommitFsyncs        int64   `json:"commit_fsyncs"`
	CommitMeanBatch     float64 `json:"commit_mean_batch_records"`
	CommitP50Micros     float64 `json:"commit_p50_micros"`
	CommitP99Micros     float64 `json:"commit_p99_micros"`

	// Recovery (snapshot + log tail).
	RecoveryGroups       int     `json:"recovery_groups"`
	SnapshotBytes        int64   `json:"snapshot_bytes"`
	SnapshotWriteSecs    float64 `json:"snapshot_write_secs"`
	RecoveryTailRecords  int     `json:"recovery_tail_records"`
	RecoverySecs         float64 `json:"recovery_secs"`
	RecoveryGroupsPerSec float64 `json:"recovery_groups_per_sec"`

	// Failover (leader killed by chaos injector). Detection (probe
	// rounds until the Detector declares death) and promotion (standby
	// state -> new durable controller) are reported separately; the
	// total is their sum.
	FailoverGroups       int     `json:"failover_groups"`
	FailoverDetectRounds int     `json:"failover_detect_rounds"`
	FailoverDetectSecs   float64 `json:"failover_detect_secs"`
	FailoverPromoteSecs  float64 `json:"failover_promote_secs"`
	FailoverSecs         float64 `json:"failover_secs"`

	// Failover under partition (leader isolated, NOT crashed: it stays
	// alive on the minority side). Adds the epoch announcement that
	// fences the data plane against the deposed leader, whose stale
	// install attempts are counted in partition_stale_rejected.
	PartitionGroups        int     `json:"partition_groups"`
	PartitionDetectRounds  int     `json:"partition_detect_rounds"`
	PartitionDetectSecs    float64 `json:"partition_detect_secs"`
	PartitionPromoteSecs   float64 `json:"partition_promote_secs"`
	PartitionAnnounceSecs  float64 `json:"partition_announce_secs"`
	PartitionFailoverSecs  float64 `json:"partition_failover_secs"`
	PartitionEpoch         uint64  `json:"partition_epoch"`
	PartitionStaleRejected int64   `json:"partition_stale_rejected"`
}

func durabilityStage(topo *topology.Topology, specs []controller.BatchSpec, writers, commitOps, failoverGroups int, out string) {
	rep := &DurabilityReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	benchGroupCommit(topo, rep, writers, commitOps)
	benchRecovery(topo, specs, rep)
	benchFailover(topo, specs, rep, failoverGroups)
	benchPartitionFailover(topo, specs, rep, failoverGroups)

	buf, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	if out != "" {
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

// benchGroupCommit measures durable op throughput with real fsync:
// concurrent writers toggle memberships, the WAL batcher coalesces
// their records into shared fsyncs.
func benchGroupCommit(topo *topology.Topology, rep *DurabilityReport, writers, ops int) {
	dir, err := os.MkdirTemp("", "elmo-durability-commit-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg := telemetry.NewRegistry()
	d, _, err := durable.Open(topo, controller.PaperConfig(0), durable.Options{
		Dir: dir, Registry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// One group per writer; each writer toggles its own extra member so
	// every op succeeds and changes the tree.
	for w := 0; w < writers; w++ {
		key := controller.GroupKey{Tenant: 1000, Group: uint32(w + 1)}
		members := map[topology.HostID]controller.Role{
			topology.HostID(w % topo.NumHosts()):       controller.RoleBoth,
			topology.HostID((w + 7) % topo.NumHosts()): controller.RoleReceiver,
		}
		if err := d.CreateGroup(key, members); err != nil {
			log.Fatal(err)
		}
	}
	before := reg.Snapshot()

	fmt.Printf("group commit: %d writers x %d ops with fsync...\n", writers, ops/writers)
	perWriter := ops / writers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := controller.GroupKey{Tenant: 1000, Group: uint32(w + 1)}
			host := topology.HostID((w + 101) % topo.NumHosts())
			for i := 0; i < perWriter; i++ {
				var err error
				if i%2 == 0 {
					err = d.Join(key, host, controller.RoleReceiver)
				} else {
					err = d.Leave(key, host, controller.RoleReceiver)
				}
				if err != nil {
					log.Fatalf("writer %d op %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	delta := reg.Snapshot().Delta(before)

	records := writers * perWriter
	rep.CommitWriters = writers
	rep.CommitRecords = records
	rep.CommitRecordsPerSec = float64(records) / secs
	rep.CommitBatches = int64(delta.Get("elmo_wal_batches_total"))
	rep.CommitFsyncs = int64(delta.Get("elmo_wal_fsyncs_total"))
	if rep.CommitBatches > 0 {
		rep.CommitMeanBatch = float64(records) / float64(rep.CommitBatches)
	}
	lat := d.WALMetrics().CommitLatency()
	rep.CommitP50Micros = lat.Quantile(0.5) * 1e6
	rep.CommitP99Micros = lat.Quantile(0.99) * 1e6
}

// benchRecovery builds a full-scale durable controller, snapshots it,
// applies a churn tail, crashes, and measures the restart.
func benchRecovery(topo *topology.Topology, specs []controller.BatchSpec, rep *DurabilityReport) {
	dir, err := os.MkdirTemp("", "elmo-durability-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := controller.PaperConfig(0)
	// NoSync: this phase measures recovery, not commit latency.
	d, _, err := durable.Open(topo, cfg, durable.Options{Dir: dir, NoSync: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recovery: installing %d groups durably...\n", len(specs))
	if _, err := d.InstallBatch(specs, controller.BatchOptions{}); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := d.Snapshot(); err != nil {
		log.Fatal(err)
	}
	rep.SnapshotWriteSecs = time.Since(start).Seconds()

	// A churn tail past the snapshot so recovery replays log records
	// too, not just the snapshot.
	tail := 1000
	if tail > len(specs) {
		tail = len(specs)
	}
	for i := 0; i < tail; i++ {
		key := specs[i].Key
		host := topology.HostID(i % topo.NumHosts())
		if err := d.Join(key, host, controller.RoleReceiver); err != nil {
			// Host may already be a member; deterministic either way.
			continue
		}
	}
	rep.RecoveryTailRecords = tail
	rep.RecoveryGroups = len(specs)

	// Crash: drop the instance without Close, free its memory, restart.
	d = nil
	runtime.GC()
	fmt.Printf("recovery: restarting from snapshot + %d-record tail...\n", tail)
	start = time.Now()
	d2, stats, err := durable.Open(topo, cfg, durable.Options{Dir: dir, NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	rep.RecoverySecs = time.Since(start).Seconds()
	rep.RecoveryGroupsPerSec = float64(stats.Groups) / rep.RecoverySecs
	rep.SnapshotBytes = stats.SnapshotBytes
	if stats.Groups != len(specs) {
		log.Fatalf("recovered %d groups, want %d", stats.Groups, len(specs))
	}
	d2.Close()
}

// benchFailover kills the leader host with the chaos injector and
// times the detect-and-promote sequence for a warm follower.
func benchFailover(topo *topology.Topology, specs []controller.BatchSpec, rep *DurabilityReport, groups int) {
	if groups > len(specs) {
		groups = len(specs)
	}
	dir, err := os.MkdirTemp("", "elmo-durability-failover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := controller.PaperConfig(0)
	netCtrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: 1})
	fab.SetInjector(inj)

	leader := topology.HostID(0)
	follower := topology.HostID(topo.NumHosts() / 2)
	rs, err := durable.NewReplicaSet(durable.ReplicaSetConfig{
		Net:       durable.Net(netCtrl, fab),
		Key:       controller.GroupKey{Tenant: 2000, Group: 1},
		Leader:    leader,
		Followers: []topology.HostID{follower},
		Window:    64,
		Topo:      topo,
		Cfg:       cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, _, err := durable.Open(topo, cfg, durable.Options{
		Dir: dir, NoSync: true, Replicate: rs.Replicator(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	fmt.Printf("failover: replicating %d groups to a warm follower...\n", groups)
	if _, err := d.InstallBatch(specs[:groups], controller.BatchOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := rs.Sync(); err != nil {
		log.Fatal(err)
	}
	if err := d.ReplicationErr(); err != nil {
		log.Fatalf("replication: %v", err)
	}

	det := &durable.Detector{DeadAfter: 3}
	f := rs.Follower(follower)

	fmt.Println("failover: crashing the leader host...")
	start := time.Now()
	inj.CrashHost(leader)
	rounds := 0
	for !det.Observe(f.Records()) {
		_ = d.Heartbeat() // lost in the fabric: leader host is dead
		rounds++
		if rounds > 100 {
			log.Fatal("failover: dead leader never detected")
		}
	}
	rep.FailoverDetectSecs = time.Since(start).Seconds()
	promoteStart := time.Now()
	promoted, pstats, err := durable.Promote(f, durable.Options{
		Dir: dir + "-promoted", NoSync: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.FailoverPromoteSecs = time.Since(promoteStart).Seconds()
	rep.FailoverSecs = time.Since(start).Seconds()
	rep.FailoverDetectRounds = rounds
	rep.FailoverGroups = pstats.Groups
	defer os.RemoveAll(dir + "-promoted")
	promoted.Close()
	if pstats.Groups != groups {
		log.Fatalf("failover: promoted %d groups, want %d", pstats.Groups, groups)
	}
}

// benchPartitionFailover times the split-brain variant: the leader is
// partitioned (alive, isolated) instead of crashed, its lease expires,
// a follower detects and promotes at the next epoch, and the new term
// is announced across the data plane. The deposed leader's stale
// install attempt must be fenced — its rejections are reported.
func benchPartitionFailover(topo *topology.Topology, specs []controller.BatchSpec, rep *DurabilityReport, groups int) {
	if groups > len(specs) {
		groups = len(specs)
	}
	dir, err := os.MkdirTemp("", "elmo-durability-partition-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := controller.PaperConfig(0)
	netCtrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: 1})
	fab.SetInjector(inj)

	leader := topology.HostID(0)
	follower := topology.HostID(topo.NumHosts() / 2)
	rs, err := durable.NewReplicaSet(durable.ReplicaSetConfig{
		Net:       durable.Net(netCtrl, fab),
		Key:       controller.GroupKey{Tenant: 2000, Group: 2},
		Leader:    leader,
		Followers: []topology.HostID{follower},
		Window:    64,
		Topo:      topo,
		Cfg:       cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, _, err := durable.Open(topo, cfg, durable.Options{
		Dir: dir, NoSync: true, Replicate: rs.Replicator(),
		Lease: durable.Lease{MissBudget: 3}, FollowerAcks: rs.FollowerAcks,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	fmt.Printf("partition: replicating %d groups to a warm follower...\n", groups)
	if _, err := d.InstallBatch(specs[:groups], controller.BatchOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := rs.Sync(); err != nil {
		log.Fatal(err)
	}

	// The data plane the leadership epochs protect: a handful of groups
	// installed at epoch 1 (install cost is not what this stage
	// measures; the fence is).
	dp := fabric.New(topo, cfg.SRuleCapacity)
	dpGroups := 50
	if dpGroups > groups {
		dpGroups = groups
	}
	for _, s := range specs[:dpGroups] {
		if _, err := dp.InstallGroupAt(d.Epoch(), d.Controller(), s.Key); err != nil {
			log.Fatal(err)
		}
	}

	det := &durable.Detector{DeadAfter: 3}
	f := rs.Follower(follower)

	fmt.Println("partition: isolating the leader host (still alive)...")
	start := time.Now()
	inj.Partition(leader)
	rounds := 0
	for !det.Observe(f.Records()) {
		_ = d.Heartbeat() // leader is alive; the fabric eats the stream
		rounds++
		if rounds > 100 {
			log.Fatal("partition: isolated leader never detected")
		}
	}
	rep.PartitionDetectSecs = time.Since(start).Seconds()

	promoteStart := time.Now()
	promoted, pstats, err := durable.Promote(f, durable.Options{
		Dir: dir + "-promoted", NoSync: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.PartitionPromoteSecs = time.Since(promoteStart).Seconds()
	defer os.RemoveAll(dir + "-promoted")
	defer promoted.Close()

	announceStart := time.Now()
	dp.AnnounceEpoch(promoted.Epoch())
	rep.PartitionAnnounceSecs = time.Since(announceStart).Seconds()
	rep.PartitionFailoverSecs = time.Since(start).Seconds()
	rep.PartitionDetectRounds = rounds
	rep.PartitionGroups = pstats.Groups
	rep.PartitionEpoch = promoted.Epoch()

	// The deposed leader — alive on the minority side — pushes its
	// stale view; the fence must reject it.
	if _, err := dp.InstallGroupAt(d.Epoch(), d.Controller(), specs[0].Key); err == nil {
		log.Fatal("partition: stale-epoch install was accepted")
	}
	rep.PartitionStaleRejected = dp.FencingRejections()
	if rep.PartitionStaleRejected == 0 {
		log.Fatal("partition: no fencing rejections recorded")
	}
	inj.Heal()
}
