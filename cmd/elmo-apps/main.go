// Command elmo-apps runs the paper's application experiments:
//
//	Figure 6 — ZeroMQ-style pub-sub: per-subscriber throughput and
//	           publisher CPU, unicast vs Elmo (§5.2.1)
//	§5.2.2  — sFlow-style telemetry: agent egress bandwidth vs
//	           collectors
//	Figure 7 — hypervisor encapsulation throughput vs #p-rules,
//	           including the §4.2 single-write vs per-rule ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"elmo/internal/apps"
	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/metrics"
	"elmo/internal/topology"
)

func main() {
	var (
		msgs    = flag.Int("msgs", 5000, "messages per pub-sub point")
		msgSize = flag.Int("msg-size", 100, "pub-sub message size (paper: 100)")
		frame   = flag.Int("frame", 1500, "Figure 7 frame size in bytes")
		perPt   = flag.Duration("encap-time", 200*time.Millisecond, "Figure 7 time per point")
	)
	flag.Parse()

	topo := topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 12, CoresPerPlane: 2,
	})
	cfg := controller.PaperConfig(6)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())

	// --- Figure 6: pub-sub ---
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	subs := make([]topology.HostID, 256)
	for i := range subs {
		subs[i] = topology.HostID(i + 1)
	}
	points, err := apps.MeasurePubSub(ctrl, fab, 0, subs, counts, *msgSize, *msgs)
	if err != nil {
		log.Fatal(err)
	}
	t6 := metrics.NewTable("Figure 6: pub-sub (100-byte messages), publisher-side",
		"subscribers", "transport", "per-msg", "throughput msg/s", "CPU %")
	for _, p := range points {
		t6.AddRow(p.Subscribers, p.Transport.String(), p.PerMessage.String(), p.Throughput, p.CPUPercent)
	}
	fmt.Print(t6)
	fmt.Println()

	// --- §5.2.2: telemetry ---
	tp, err := apps.MeasureTelemetry(ctrl, fab, 0, subs[:64], []int{1, 2, 4, 8, 16, 32, 64}, 8)
	if err != nil {
		log.Fatal(err)
	}
	tt := metrics.NewTable("sFlow-style telemetry at 8 reports/s: agent egress",
		"collectors", "transport", "egress Kbps")
	for _, p := range tp {
		tt.AddRow(p.Collectors, p.Transport.String(), p.EgressKbps)
	}
	fmt.Print(tt)
	fmt.Println()

	// --- Figure 7: hypervisor encapsulation ---
	ft := topology.MustNew(topology.FacebookFabric())
	ep, err := apps.MeasureEncap(ft, []int{0, 5, 10, 15, 20, 25, 30}, *frame, *perPt)
	if err != nil {
		log.Fatal(err)
	}
	t7 := metrics.NewTable(fmt.Sprintf("Figure 7: hypervisor encapsulation, %d-byte frames", *frame),
		"p-rules", "mode", "Mpps", "Gbps", "pkt bytes")
	for _, p := range ep {
		t7.AddRow(p.PRules, p.Mode.String(), p.Mpps, p.Gbps, p.Bytes)
	}
	fmt.Print(t7)
	fmt.Println("\nShape check (paper): pps falls as p-rules grow while Gbps stays ~flat;")
	fmt.Println("treating p-rules as separate headers (per-rule writes) loses throughput.")
}
