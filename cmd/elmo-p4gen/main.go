// Command elmo-p4gen emits the P4_16 switch programs (and the
// hypervisor flow template) for a concrete fabric, the boot-time
// configuration step of §2. The output mirrors the structure of the
// authors' published p4-programs repository, specialized to the
// fabric's bitmap widths and rule budgets.
//
//	elmo-p4gen -tier leaf -pods 12 -spines 4 -leaves 48 -hosts 48 -cores 4
//	elmo-p4gen -tier hypervisor
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elmo/internal/header"
	"elmo/internal/p4gen"
	"elmo/internal/topology"
)

func main() {
	var (
		tier       = flag.String("tier", "leaf", "leaf, spine, core, or hypervisor")
		pods       = flag.Int("pods", 12, "pods")
		spines     = flag.Int("spines", 4, "spines per pod")
		leaves     = flag.Int("leaves", 48, "leaves per pod")
		hosts      = flag.Int("hosts", 48, "hosts per leaf")
		cores      = flag.Int("cores", 4, "cores per plane")
		leafRules  = flag.Int("leaf-rules", 30, "unrolled d-leaf p-rule states")
		spineRules = flag.Int("spine-rules", 2, "unrolled d-spine p-rule states")
		kmax       = flag.Int("kmax", 2, "switch identifiers per p-rule")
		withINT    = flag.Bool("int", false, "include in-band telemetry support")
	)
	flag.Parse()

	topo, err := topology.New(topology.Config{
		Pods: *pods, SpinesPerPod: *spines, LeavesPerPod: *leaves,
		HostsPerLeaf: *hosts, CoresPerPlane: *cores,
	})
	if err != nil {
		log.Fatal(err)
	}
	l := header.LayoutFor(topo)

	if *tier == "hypervisor" {
		fmt.Print(p4gen.HypervisorPipeline(l))
		return
	}
	var t p4gen.Tier
	switch *tier {
	case "leaf":
		t = p4gen.TierLeaf
	case "spine":
		t = p4gen.TierSpine
	case "core":
		t = p4gen.TierCore
	default:
		fmt.Fprintf(os.Stderr, "unknown tier %q\n", *tier)
		os.Exit(2)
	}
	prog, err := p4gen.NetworkSwitchProgram(l, t, p4gen.Options{
		MaxSpineRules:      *spineRules,
		MaxLeafRules:       *leafRules,
		MaxSwitchesPerRule: *kmax,
		EnableINT:          *withINT,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog)
}
