package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"elmo/internal/chaos"
	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/durable"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// runDurable walks the durable-controller story end to end: log every
// op, snapshot, crash, recover byte-identically, then lose the leader
// host to the chaos injector and fail over to a warm replica.
func runDurable(topoCfg topology.Config, tenants, groups, srules int, meanVMs float64, seed int64) {
	topo := topology.MustNew(topoCfg)
	cfg := paperController(0, srules)
	dir, err := os.MkdirTemp("", "elmo-durable-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Replication group: the durable controller's host plus two warm
	// standbys, multicast over the same fabric the controller manages.
	netCtrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: uint64(seed)})
	fab.SetInjector(inj)
	leader := topology.HostID(0)
	standby := topology.HostID(topo.NumHosts() / 2)
	rs, err := durable.NewReplicaSet(durable.ReplicaSetConfig{
		Net:       durable.Net(netCtrl, fab),
		Key:       controller.GroupKey{Tenant: 4000, Group: 1},
		Leader:    leader,
		Followers: []topology.HostID{standby},
		Window:    64,
		Topo:      topo,
		Cfg:       cfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	d, _, err := durable.Open(topo, cfg, durable.Options{Dir: dir, Replicate: rs.Replicator()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== durable controller: WAL + snapshot + replicated failover ===\n")
	fmt.Printf("durability root: %s (WAL segments under wal/)\n\n", dir)

	// Phase 1: durable group creation + churn.
	dep, err := placement.Place(topo, placement.Config{
		Tenants: tenants, VMsPerHost: 20, MinVMs: 5,
		MaxVMs:  maxVMsFor(topoCfg, 1),
		MeanVMs: effectiveMeanVMs(meanVMs, topoCfg, tenants),
		P:       1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	gs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: groups, MinSize: 5, Dist: groupgen.WVE, Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	start := time.Now()
	created := 0
	for gi := range gs {
		g := &gs[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := churn.RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		key := controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
		if err := d.CreateGroup(key, members); err != nil {
			log.Fatal(err)
		}
		created++
	}
	fmt.Printf("created %d groups durably in %v (every op logged before apply, group-committed fsync)\n",
		created, time.Since(start).Round(time.Millisecond))

	// Phase 2: snapshot + post-snapshot churn tail.
	lsn, err := d.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot covers LSN %d; log segments before it truncated\n", lsn)
	tailOps := 200
	for i := 0; i < tailOps; i++ {
		g := &gs[rng.Intn(len(gs))]
		key := controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
		h := g.Hosts[rng.Intn(len(g.Hosts))]
		if rng.Intn(2) == 0 {
			_ = d.Join(key, h, controller.RoleReceiver)
		} else {
			_ = d.Leave(key, h, controller.RoleReceiver)
		}
	}
	if err := rs.Sync(); err != nil {
		log.Fatal(err)
	}
	want := d.Controller().Fingerprint()
	fmt.Printf("applied %d churn ops past the snapshot; state fingerprint %s\n\n", tailOps, want[:16])

	// Phase 3: crash + recover. Dropping the instance without Close is
	// the crash; the WAL's durable prefix is all that survives.
	fmt.Println("--- crash: controller process dies without warning ---")
	d = nil
	d2, stats, err := durable.Open(topo, cfg, durable.Options{Dir: dir, Replicate: nil})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v: snapshot (%d bytes, %v) + %d replayed records -> %d groups\n",
		(stats.SnapshotElapsed + stats.ReplayElapsed).Round(time.Millisecond),
		stats.SnapshotBytes, stats.SnapshotElapsed.Round(time.Millisecond),
		stats.Replayed, stats.Groups)
	got := d2.Controller().Fingerprint()
	if got != want {
		log.Fatalf("recovered fingerprint %s != pre-crash %s", got, want)
	}
	fmt.Printf("state fingerprint %s — byte-identical to the crashed instance\n\n", got[:16])
	if err := d2.Close(); err != nil {
		log.Fatal(err)
	}

	// Phase 4: leader host dies; warm standby promotes.
	fmt.Printf("--- chaos: leader host %d loses every link ---\n", leader)
	inj.CrashHost(leader)
	det := &durable.Detector{DeadAfter: 3}
	f := rs.Follower(standby)
	rounds := 0
	for !det.Observe(f.Records()) {
		rounds++
		if rounds > 100 {
			log.Fatal("dead leader never detected")
		}
	}
	start = time.Now()
	promoted, pstats, err := durable.Promote(f, durable.Options{Dir: dir + "-promoted"})
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir + "-promoted")
	defer promoted.Close()
	fmt.Printf("standby on host %d declared leader dead after %d silent probe rounds\n", standby, rounds)
	fmt.Printf("promoted warm replica in %v: %d groups, fingerprint %s\n",
		time.Since(start).Round(time.Millisecond), pstats.Groups,
		promoted.Controller().Fingerprint()[:16])
	if promoted.Controller().Fingerprint() != want {
		log.Fatal("promoted replica diverged from the leader's replicated state")
	}
	fmt.Println("promoted controller matches the dead leader's last replicated state; new WAL epoch open for writes")
}
