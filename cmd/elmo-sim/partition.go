package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"elmo/internal/chaos"
	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/durable"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// runPartition narrates the split-brain story: the leader is isolated
// by a symmetric partition — alive, writing, and convinced it still
// leads — while the majority side detects the silence, promotes a
// standby at the next leadership epoch, and fences the data plane so
// every stale install the old leader attempts bounces off. After the
// partition heals, the deposed leader resyncs from the successor and
// rejoins as a follower.
func runPartition(topoCfg topology.Config, tenants, groups, srules int, meanVMs float64, seed int64) {
	topo := topology.MustNew(topoCfg)
	cfg := paperController(0, srules)
	dir, err := os.MkdirTemp("", "elmo-partition-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Replication plane: leader host plus one warm standby, multicast
	// over a fabric with a chaos injector on every link.
	netCtrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: uint64(seed)})
	fab.SetInjector(inj)
	leader := topology.HostID(0)
	standby := topology.HostID(topo.NumHosts() / 2)
	rs, err := durable.NewReplicaSet(durable.ReplicaSetConfig{
		Net:       durable.Net(netCtrl, fab),
		Key:       controller.GroupKey{Tenant: 4000, Group: 2},
		Leader:    leader,
		Followers: []topology.HostID{standby},
		Window:    64,
		Topo:      topo,
		Cfg:       cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	const missBudget = 3
	d, _, err := durable.Open(topo, cfg, durable.Options{
		Dir:          dir,
		Replicate:    rs.Replicator(),
		Lease:        durable.Lease{MissBudget: missBudget},
		FollowerAcks: rs.FollowerAcks,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== fenced leadership: partition, epoch takeover, lease demotion, rejoin ===\n")
	fmt.Printf("leader host %d (epoch %d), warm standby host %d, lease budget %d heartbeat rounds\n\n",
		leader, d.Epoch(), standby, missBudget)

	// Phase 1: epoch-1 regime — durable groups, replicated, installed
	// into the data plane with the leader's epoch stamped.
	dep, err := placement.Place(topo, placement.Config{
		Tenants: tenants, VMsPerHost: 20, MinVMs: 5,
		MaxVMs:  maxVMsFor(topoCfg, 1),
		MeanVMs: effectiveMeanVMs(meanVMs, topoCfg, tenants),
		P:       1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	gs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: groups, MinSize: 5, Dist: groupgen.WVE, Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	keys := make([]controller.GroupKey, 0, len(gs))
	start := time.Now()
	for gi := range gs {
		g := &gs[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := churn.RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		key := controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
		if err := d.CreateGroup(key, members); err != nil {
			log.Fatal(err)
		}
		keys = append(keys, key)
	}
	dp := fabric.New(topo, cfg.SRuleCapacity)
	dpGroups := 20
	if dpGroups > len(keys) {
		dpGroups = len(keys)
	}
	for _, k := range keys[:dpGroups] {
		if _, err := dp.InstallGroupAt(d.Epoch(), d.Controller(), k); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("created %d groups durably in %v; %d installed into the data plane at epoch %d\n",
		len(keys), time.Since(start).Round(time.Millisecond), dpGroups, d.Epoch())

	// Healthy heartbeats: follower acks refresh the lease every round.
	det := &durable.Detector{DeadAfter: 3}
	f := rs.Follower(standby)
	for i := 0; i < 3; i++ {
		if err := d.Heartbeat(); err != nil {
			log.Fatal(err)
		}
		det.Observe(f.Records())
	}
	fmt.Printf("heartbeats flowing: follower acked, lease misses %d\n\n", d.LeaseMisses())

	// Phase 2: the cut. The leader is NOT crashed — its WAL keeps
	// accepting writes — but nothing crosses its NIC in either
	// direction.
	fmt.Printf("--- partition: host %d isolated bidirectionally (process stays alive) ---\n", leader)
	inj.Partition(leader)
	lsnAtCut := d.LastLSN()
	var hbErr error
	rounds := 0
	for {
		rounds++
		if det.Observe(f.Records()) {
			break
		}
		hbErr = d.Heartbeat()
		if rounds > 100 {
			log.Fatal("isolated leader never detected")
		}
	}
	fmt.Printf("standby: leader silent for %d probe rounds -> declared dead\n", rounds)
	for i := 0; hbErr == nil && i < missBudget; i++ {
		hbErr = d.Heartbeat() // burn the remaining lease budget
	}
	if !errors.Is(hbErr, durable.ErrLeaseExpired) {
		log.Fatalf("leader lease did not expire: %v", hbErr)
	}
	fmt.Printf("old leader: no follower ack for %d rounds -> lease expired, self-demoted to read-only\n", missBudget)
	fmt.Printf("old leader kept writing through the cut: WAL advanced %d records after isolation\n\n", d.LastLSN()-lsnAtCut)

	// Phase 3: takeover at the next epoch, fence the data plane first.
	promoted, pstats, err := durable.Promote(f, durable.Options{Dir: dir + "-promoted"})
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir + "-promoted")
	defer promoted.Close()
	dp.AnnounceEpoch(promoted.Epoch())
	fmt.Printf("--- takeover: standby promoted at epoch %d (%d groups), epoch announced fabric-wide ---\n",
		promoted.Epoch(), pstats.Groups)

	// The deposed leader, still alive and at epoch 1, pushes its stale
	// view at the data plane.
	var se *dataplane.StaleEpochError
	if _, err := dp.InstallGroupAt(d.Epoch(), d.Controller(), keys[0]); errors.As(err, &se) {
		fmt.Printf("old leader install at epoch %d: REJECTED by %s (floor %d), elmo_fencing_rejected_total=%d\n",
			se.Epoch, se.Device, se.Current, dp.FencingRejections())
	} else {
		log.Fatalf("stale-epoch install was not fenced: %v", err)
	}
	if err := d.ObserveEpoch(se.Current); !errors.Is(err, durable.ErrNotLeader) {
		log.Fatalf("rejection feedback did not demote: %v", err)
	}
	fmt.Printf("old leader observed epoch %d from the rejection -> steps down for good\n\n", se.Current)

	// Phase 4: heal, resync, rejoin as follower.
	fmt.Println("--- heal: partition lifted ---")
	inj.Heal()
	epoch, state, err := promoted.ResyncState()
	if err != nil {
		log.Fatal(err)
	}
	rejoined, err := durable.NewFollowerFromState(topo, cfg, 0, epoch, state)
	if err != nil {
		log.Fatal(err)
	}
	wantFP := promoted.Controller().Fingerprint()
	gotFP := rejoined.Controller().Fingerprint()
	if gotFP != wantFP {
		log.Fatalf("rejoined follower fingerprint %s != new leader %s", gotFP, wantFP)
	}
	fmt.Printf("old leader resynced from epoch-%d snapshot and rejoined as follower\n", epoch)
	fmt.Printf("fingerprints converged: new leader %s == rejoined follower %s\n",
		wantFP[:16], gotFP[:16])
	fmt.Println("split brain prevented: one epoch, one writer, zero stale installs applied")
}
