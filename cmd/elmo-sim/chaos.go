package main

import (
	"bytes"
	"fmt"
	"log"

	"elmo/internal/chaos"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/reliable"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// runChaos runs the scripted fail→degrade→repair→reconverge scenario
// with the flight recorder narrating: seeded ambient faults on every
// link, a spine flap scripted by a FaultPlan, a monitor that detects
// the flap from probe loss, and a reliable session that must deliver
// 100% in order through all of it.
func runChaos(topoCfg topology.Config, srules int, seed int64) {
	topo := topology.MustNew(topoCfg)
	cfg := paperController(0, srules)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())

	rec := trace.New(trace.Config{Capacity: 1 << 16})
	rec.Enable(trace.CatChaos, trace.CatControl)
	ctrl.SetTracer(rec)
	fab.SetTracer(rec)

	inj := chaos.New(chaos.Config{
		Seed: uint64(seed), Drop: 0.03, Duplicate: 0.03, Corrupt: 0.02, Reorder: 0.05,
	})
	inj.Tracer = rec
	fab.SetInjector(inj)

	key := controller.GroupKey{Tenant: 1, Group: 1}
	hosts := tracedHosts(topo)
	sender, receivers := hosts[0], hosts[1:]
	members := make(map[topology.HostID]controller.Role, len(hosts))
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		log.Fatal(err)
	}
	lay := header.LayoutFor(topo)
	pre, err := ctrl.HeaderFor(key, sender)
	if err != nil {
		log.Fatal(err)
	}
	preWire, err := header.Encode(lay, pre)
	if err != nil {
		log.Fatal(err)
	}

	mon, err := chaos.NewMonitor(ctrl, fab, chaos.MonitorConfig{Tracer: rec})
	if err != nil {
		log.Fatal(err)
	}
	mon.Watch(key, sender)

	sess, err := reliable.NewSession(fab, ctrl, key, sender, 512)
	if err != nil {
		log.Fatal(err)
	}
	sess.ControlLoss = func(uint8, topology.HostID, topology.HostID) bool {
		return inj.Chance(0.05)
	}

	flapped := topo.SpineAt(topo.HostPod(sender), 0)
	const steps, failAt, repairAt = 80, 20, 50
	inj.LoadPlan(chaos.FaultPlan{
		{Step: failAt, Tier: dataplane.LinkSpine, Switch: int32(flapped), Loss: 1.0},
		{Step: repairAt, Tier: dataplane.LinkSpine, Switch: int32(flapped), Loss: 0},
	})
	inj.Enable()

	fmt.Printf("=== chaos scenario: seed %d, tenant %d group %d, sender %d, receivers %v ===\n",
		seed, key.Tenant, key.Group, sender, receivers)
	fmt.Printf("ambient faults per crossing: drop 3%%, dup 3%%, corrupt 2%%, reorder 5%%\n")
	fmt.Printf("fault plan: spine %d dies at step %d, hardware repaired at step %d\n\n", flapped, failAt, repairAt)

	for i := 0; i < steps; i++ {
		applied := inj.Step()
		for _, ev := range applied {
			if ev.Loss > 0 {
				fmt.Printf("step %2d: plan kills %s %d (loss %.0f%%)\n", i+1, ev.Tier, ev.Switch, 100*ev.Loss)
			} else {
				fmt.Printf("step %2d: plan repairs %s %d\n", i+1, ev.Tier, ev.Switch)
			}
		}
		for _, tr := range mon.ProbeRound() {
			verdict := "REPAIRED"
			if tr.Down {
				verdict = "FAILED"
			}
			fmt.Printf("step %2d: monitor detects %s %d %s from probe loss (%d groups impacted), flows refreshed\n",
				i+1, tr.Tier, tr.ID, verdict, tr.Impacted)
			if tr.Down && mon.Degraded(key, sender) {
				fmt.Printf("step %2d: no failure-free path — sender flow pulled, publishing degrades to unicast (§3.3)\n", i+1)
			}
		}
		if err := sess.Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			log.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := sess.Flush(); err != nil {
		log.Fatal(err)
	}

	st := inj.Stats()
	fmt.Printf("\nfaults fired over %d crossings: %d drops, %d dups, %d corrupts, %d delays\n",
		st.Crossings, st.Drops, st.Dups, st.Corrupts, st.Delays)
	fmt.Printf("reliable layer: %d NAKs, %d retries after control loss, %d control drops, %d corrupt frames, %d unicast fallbacks\n",
		sess.NAKs, sess.NAKRetries, sess.ControlDrops, sess.CorruptFrames, sess.UnicastFallbacks)
	for _, h := range receivers {
		got := sess.Delivered(h)
		ordered := true
		for i, p := range got {
			if string(p) != fmt.Sprintf("msg-%d", i) {
				ordered = false
			}
		}
		fmt.Printf("host %d: delivered %d/%d in order: %v\n", h, len(got), steps, ordered)
	}

	post, err := ctrl.HeaderFor(key, sender)
	if err != nil {
		log.Fatal(err)
	}
	postWire, err := header.Encode(lay, post)
	if err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(preWire, postWire) {
		fmt.Printf("\npost-repair sender header reconverged to the pre-failure encoding (%d bytes)\n", len(postWire))
	} else {
		fmt.Printf("\nWARNING: post-repair encoding differs from pre-failure\npre  %x\npost %x\n", preWire, postWire)
	}

	fmt.Printf("\ncontrol-plane flight log:\n%s", trace.RenderControl(rec.Snapshot()))
}
