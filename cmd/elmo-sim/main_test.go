package main

import (
	"os"
	"strings"
	"testing"

	"elmo/internal/topology"
)

func TestParseInts(t *testing.T) {
	cases := map[string][]int{
		"0,6,12": {0, 6, 12},
		"5":      {5},
		"":       nil,
		"a,3,b4": {3, 4},
		",,7,":   {7},
	}
	for in, want := range cases {
		got := parseInts(in)
		if len(got) != len(want) {
			t.Fatalf("parseInts(%q) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parseInts(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestMaxVMsFor(t *testing.T) {
	full := topology.FacebookFabric()
	// P=1: one VM per rack, 576 racks -> 432 (3/4 headroom).
	if got := maxVMsFor(full, 1); got != 432 {
		t.Fatalf("P=1: %d", got)
	}
	// P=12 <= 48 hosts/leaf: 12/rack.
	if got := maxVMsFor(full, 12); got != 5000 {
		t.Fatalf("P=12: %d (capacity exceeds the paper's 5000 cap)", got)
	}
	// P larger than hosts/leaf is bounded by distinct hosts.
	tiny := topology.Config{Pods: 2, SpinesPerPod: 1, LeavesPerPod: 2, HostsPerLeaf: 4, CoresPerPlane: 1}
	if got := maxVMsFor(tiny, 12); got != 2*2*4*3/4 {
		t.Fatalf("tiny P=12: %d", got)
	}
	if got := maxVMsFor(topology.Config{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 1, CoresPerPlane: 1}, 1); got != 5 {
		t.Fatalf("floor: %d", got)
	}
}

func TestEffectiveMeanVMs(t *testing.T) {
	full := topology.FacebookFabric()
	// Explicit flag wins.
	if got := effectiveMeanVMs(42, full, 3000); got != 42 {
		t.Fatalf("explicit: %f", got)
	}
	// Auto: capped at the paper's 178.77 when capacity allows.
	if got := effectiveMeanVMs(0, full, 1000); got != 178.77 {
		t.Fatalf("auto large fabric: %f", got)
	}
	// Auto on tight fabrics: scaled to 70%% occupancy.
	got := effectiveMeanVMs(0, full, 3000)
	want := 0.7 * float64(27648*20) / 3000
	if got != want {
		t.Fatalf("auto tight: %f want %f", got, want)
	}
	// Floor.
	tiny := topology.Config{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 1, CoresPerPlane: 1}
	if got := effectiveMeanVMs(0, tiny, 100); got != 5 {
		t.Fatalf("floor: %f", got)
	}
}

func TestCSVWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := newCSVWriter(dir, "out.csv", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	w.row(1, 2.5)
	w.row("x", 0.000001)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/out.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 || lines[0] != "a,b" || lines[1] != "1,2.5" {
		t.Fatalf("csv = %q", string(data))
	}
}
