// Command elmo-sim runs the paper's §5.1 scalability experiments:
//
//	Figure 4   — P=12 clustered placement: groups covered by p-rules,
//	             s-rules per switch, traffic overhead, for R ∈ {0,6,12}
//	Figure 5   — P=1 dispersed placement: same panels
//	Sensitivity — Uniform group sizes, reduced s-rule capacity and
//	             reduced header budgets (§5.1.2 text)
//	Table 2    — churn update load (with -churn)
//	Failures   — spine/core failure impact (with -failures)
//
// The default scale is laptop-sized; pass -pods 12 -leaves 48 -hosts 48
// -spines 4 -cores 4 -tenants 3000 -groups 1000000 to reproduce the
// full 27,648-host / 1M-group configuration (takes a while).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/metrics"
	"elmo/internal/obs"
	"elmo/internal/placement"
	"elmo/internal/sim"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

func main() {
	var (
		pods        = flag.Int("pods", 4, "pods")
		spines      = flag.Int("spines", 2, "spines per pod")
		leaves      = flag.Int("leaves", 8, "leaves per pod")
		hosts       = flag.Int("hosts", 8, "hosts per leaf")
		cores       = flag.Int("cores", 2, "cores per plane")
		tenants     = flag.Int("tenants", 80, "tenants")
		groups      = flag.Int("groups", 2000, "total multicast groups")
		srules      = flag.Int("srules", 10000, "s-rule capacity per switch (Fmax)")
		dist        = flag.String("dist", "wve", "group-size distribution: wve or uniform")
		rList       = flag.String("r", "0,6,12", "comma-separated redundancy limits")
		doChurn     = flag.Bool("churn", false, "run the Table 2 churn experiment")
		events      = flag.Int("events", 20000, "churn events (with -churn)")
		doFail      = flag.Bool("failures", false, "run the failure-impact experiment")
		csvDir      = flag.String("csv", "", "directory to write figure CSV series into (empty = none)")
		doTrace     = flag.Bool("trace", false, "record a traced multicast scenario instead of the figure sweeps")
		doChaos     = flag.Bool("chaos", false, "run the scripted fault-injection scenario (seeded faults, detection, repair, reconvergence) instead of the figure sweeps")
		doDurable   = flag.Bool("durable", false, "run the durable-controller scenario (WAL, snapshot, crash recovery, replicated failover) instead of the figure sweeps")
		doPartition = flag.Bool("partition", false, "run the fenced-leadership scenario (network partition, lease expiry, epoch takeover, stale-install fencing, rejoin) instead of the figure sweeps")
		traceOut    = flag.String("traceout", "", "file to write the Chrome trace_event JSON into (with -trace; empty = none)")
		meanVMs     = flag.Float64("meanvms", 0, "mean tenant VMs (0 = auto: paper's 178.77 capped by fabric capacity)")
		workers     = flag.Int("workers", 0, "encoder/apply workers for the controller pipeline (0 = GOMAXPROCS; results are identical for every value)")
		seed        = flag.Int64("seed", 1, "random seed")
		metricsAddr = flag.String("metrics", "", "listen address for the /metrics + pprof endpoint (e.g. :9090; empty = no listener)")
		watch       = flag.Duration("watch", 0, "print a periodic ops summary (SLO health, top links, heavy hitters) every interval (e.g. 2s; 0 = off)")
	)
	flag.Parse()

	topoCfg := topology.Config{
		Pods: *pods, SpinesPerPod: *spines, LeavesPerPod: *leaves,
		HostsPerLeaf: *hosts, CoresPerPlane: *cores,
	}

	// One process-wide registry: the experiment phases below attach to
	// it, and the run ends with a telemetry summary table whether or not
	// a listener was requested. -watch (or a listener) also attaches the
	// ops plane, feeding link rates, heavy hitters, and SLO burn state
	// from the measurement fabric.
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntime(reg)
	var plane *obs.Plane
	if *watch > 0 || *metricsAddr != "" {
		plane = obs.New(obs.Options{Topology: topology.MustNew(topoCfg), Registry: reg})
		plane.Enable()
		defer plane.StartSampler()()
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		plane.Mount(srv)
		fmt.Printf("serving /metrics, /debug/pprof and /debug/elmo on http://%s\n", srv.Addr())
	}
	if *watch > 0 {
		done := make(chan struct{})
		defer close(done)
		go watchOps(plane, *watch, done)
	}
	if *doTrace {
		runTrace(topoCfg, *srules, *traceOut)
		return
	}
	if *doChaos {
		runChaos(topoCfg, *srules, *seed)
		return
	}
	if *doDurable {
		runDurable(topoCfg, *tenants, *groups, *srules, *meanVMs, *seed)
		return
	}
	if *doPartition {
		runPartition(topoCfg, *tenants, *groups, *srules, *meanVMs, *seed)
		return
	}
	distribution := groupgen.WVE
	if *dist == "uniform" {
		distribution = groupgen.Uniform
	}
	rs := parseInts(*rList)

	for _, scenario := range []struct {
		name string
		file string
		p    int
	}{
		{"Figure 4 (clustered placement, P=12)", "figure4.csv", 12},
		{"Figure 5 (dispersed placement, P=1)", "figure5.csv", 1},
	} {
		var csv *csvWriter
		if *csvDir != "" {
			var err error
			csv, err = newCSVWriter(*csvDir, scenario.file,
				"r", "groups", "p_rules_only", "leaf_p_rules_only", "with_s_rules", "default",
				"leaf_srules_mean", "leaf_srules_max", "spine_srules_mean", "spine_srules_max",
				"li_leaf_mean", "hdr_mean_bytes", "hdr_max_bytes",
				"traffic_ovh_64", "traffic_ovh_1500", "unicast_ovh_64", "unicast_ovh_1500",
				"overlay_ovh_64", "overlay_ovh_1500")
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("=== %s, %s group sizes ===\n", scenario.name, distribution)
		t := metrics.NewTable("",
			"R", "p-rules only", "leaf p-only", "with s-rules", "default", "leaf sr mean",
			"leaf sr max", "spine sr mean", "spine sr max", "Li leaf mean",
			"hdr mean B", "hdr max B", "ovh 64B", "ovh 1500B")
		for _, r := range rs {
			cfg := sim.ScalabilityConfig{
				Topology: topoCfg,
				Placement: placement.Config{
					Tenants: *tenants, VMsPerHost: 20, MinVMs: 5,
					MaxVMs:  maxVMsFor(topoCfg, scenario.p),
					MeanVMs: effectiveMeanVMs(*meanVMs, topoCfg, *tenants),
					P:       scenario.p, Seed: *seed,
				},
				Groups:              groupgen.Config{TotalGroups: *groups, MinSize: 5, Dist: distribution, Seed: *seed + 1},
				Controller:          paperController(r, *srules),
				PacketSizes:         []int{64, 1500},
				BaselineSampleEvery: 101,
				Seed:                *seed + 2,
				Workers:             *workers,
				Metrics:             reg,
			}
			if plane != nil {
				cfg.Observer = plane
			}
			start := time.Now()
			res, err := sim.RunScalability(cfg)
			if err != nil {
				log.Fatalf("%s R=%d: %v", scenario.name, r, err)
			}
			if res.DeliveryFailures > 0 {
				log.Fatalf("%s R=%d: %d delivery failures", scenario.name, r, res.DeliveryFailures)
			}
			t.AddRow(r, res.GroupsPRulesOnly, res.LeafPRulesOnly, res.GroupsWithSRules, res.GroupsWithDefault,
				res.LeafSRules.Mean(), res.LeafSRules.Max(),
				res.SpineSRules.Mean(), res.SpineSRules.Max(), res.LiLeafEntries.Mean(),
				res.HeaderBytes.Mean(), res.HeaderBytes.Max(),
				res.TrafficOverhead[64], res.TrafficOverhead[1500])
			fmt.Printf("  R=%d done in %v (unicast ovh %.2f @64B %.2f @1500B; overlay ovh %.2f @64B %.2f @1500B)\n",
				r, time.Since(start).Round(time.Millisecond),
				res.UnicastOverhead[64], res.UnicastOverhead[1500],
				res.OverlayOverhead[64], res.OverlayOverhead[1500])
			if csv != nil {
				csv.row(r, res.TotalGroups, res.GroupsPRulesOnly, res.LeafPRulesOnly,
					res.GroupsWithSRules, res.GroupsWithDefault,
					res.LeafSRules.Mean(), res.LeafSRules.Max(),
					res.SpineSRules.Mean(), res.SpineSRules.Max(),
					res.LiLeafEntries.Mean(), res.HeaderBytes.Mean(), res.HeaderBytes.Max(),
					res.TrafficOverhead[64], res.TrafficOverhead[1500],
					res.UnicastOverhead[64], res.UnicastOverhead[1500],
					res.OverlayOverhead[64], res.OverlayOverhead[1500])
			}
		}
		if csv != nil {
			if err := csv.close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Print(t)
		fmt.Println()
	}

	if *csvDir != "" {
		if err := writeManifest(*csvDir, topoCfg, *tenants, *groups, *srules, *dist, rs, *meanVMs, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *doChurn || *doFail {
		runControlPlane(topoCfg, *tenants, *groups, *srules, distribution, *events, *meanVMs, *seed, *workers, *doChurn, *doFail, reg)
	}
	printTelemetrySummary(reg)
}

// watchOps prints a compact ops summary every interval until done:
// SLO health and good ratios, the hottest links by windowed rate, and
// the heaviest groups from the space-saving sketch.
func watchOps(p *obs.Plane, every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			printOpsSummary(p)
		}
	}
}

func printOpsSummary(p *obs.Plane) {
	st := p.Status()
	var sb strings.Builder
	if st.Healthy {
		sb.WriteString("[ops] healthy")
	} else {
		sb.WriteString("[ops] UNHEALTHY")
	}
	for _, o := range st.Objectives {
		fmt.Fprintf(&sb, "  %s=%.6f", o.Name, o.GoodRatio)
	}
	sb.WriteByte('\n')
	for _, l := range p.TopLinks(3, 0) {
		fmt.Fprintf(&sb, "[ops]   link %-22s %12.0f B/s %14d B\n", l.Name, l.BytesSec, l.Bytes)
	}
	for _, h := range p.TopGroups(3) {
		fmt.Fprintf(&sb, "[ops]   group vni=%d id=%d %d pkts %d B\n", h.VNI, h.Group, h.Count, h.Bytes)
	}
	fmt.Print(sb.String())
}

// printTelemetrySummary renders the run's accumulated elmo_* series as
// a final table — the always-on view of what the instrumented layers
// counted, listener or not. Histogram buckets are folded into their
// _sum/_count series to keep the table readable.
func printTelemetrySummary(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	t := metrics.NewTable("Telemetry summary", "series", "value")
	rows := 0
	for _, k := range snap.Keys() {
		if !strings.HasPrefix(k, "elmo_") || strings.Contains(k, "_bucket{") {
			continue
		}
		if v := snap.Get(k); v != 0 {
			t.AddRow(k, v)
			rows++
		}
	}
	if rows == 0 {
		return
	}
	fmt.Println()
	fmt.Print(t)
}

// runTrace records one multicast scenario with the flight recorder on:
// a cross-pod group send, a spine failure with reroute, and the repair,
// printing the per-packet path and the controller's flight log, and
// optionally dumping the Chrome trace_event JSON for chrome://tracing.
func runTrace(topoCfg topology.Config, srules int, out string) {
	topo := topology.MustNew(topoCfg)
	cfg := paperController(0, srules)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	f := fabric.New(topo, cfg.SRuleCapacity)
	f.SetFailures(ctrl.Failures())

	rec := trace.New(trace.Config{Capacity: 1 << 16})
	rec.Enable() // every category
	ctrl.SetTracer(rec)
	f.SetTracer(rec)

	key := controller.GroupKey{Tenant: 1, Group: 1}
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	hosts := tracedHosts(topo)
	members := make(map[topology.HostID]controller.Role, len(hosts))
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	if _, err := f.InstallGroup(ctrl, key); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== traced scenario: tenant %d group %d, members %v ===\n", key.Tenant, key.Group, hosts)
	d, err := f.Send(hosts[0], addr, []byte("traced packet"))
	if err != nil {
		log.Fatal(err)
	}
	healthy := rec.Snapshot()
	fmt.Printf("\nhealthy send from host %d (%d copies delivered):\n  %s\n",
		hosts[0], len(d.Received), trace.RenderPath(healthy, addr.VNI, addr.Group))

	// Fail a spine in the sender's pod, refresh the sender flows with
	// the recomputed headers, and send again to show the reroute.
	failed := topo.SpineAt(topo.HostPod(hosts[0]), 0)
	ctrl.FailSpine(failed)
	refreshFlows(ctrl, f, key, addr, hosts)
	d, err = f.Send(hosts[0], addr, []byte("after failure"))
	if err != nil {
		log.Fatal(err)
	}
	all := rec.Snapshot()
	fmt.Printf("\nafter FailSpine(%d) (%d copies delivered):\n  %s\n",
		failed, len(d.Received), trace.RenderPath(all[len(healthy):], addr.VNI, addr.Group))

	ctrl.RepairSpine(failed)
	refreshFlows(ctrl, f, key, addr, hosts)

	final := rec.Snapshot()
	fmt.Printf("\ncontrol-plane flight log:\n%s", trace.RenderControl(final))

	if out != "" {
		fd, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(fd, final); err != nil {
			log.Fatal(err)
		}
		if err := fd.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d events written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n",
			len(final), out)
	}
}

// tracedHosts picks a small group that exercises every tier: two hosts
// under the sender's leaf (leaf-local delivery), one under a second
// leaf of the same pod (spine hop), and one in another pod (core hop),
// as the topology allows.
func tracedHosts(topo *topology.Topology) []topology.HostID {
	cfg := topo.Config()
	hosts := []topology.HostID{topo.HostAt(0, 0)}
	if cfg.HostsPerLeaf > 1 {
		hosts = append(hosts, topo.HostAt(0, 1))
	}
	if cfg.LeavesPerPod > 1 {
		hosts = append(hosts, topo.HostAt(1, 0))
	}
	if cfg.Pods > 1 {
		hosts = append(hosts, topo.HostAt(topo.LeafAt(1, 0), 0))
	}
	return hosts
}

// refreshFlows reinstalls the sender flows with freshly computed
// headers — the hypervisor update the controller pushes after churn or
// a failure (§4.3).
func refreshFlows(ctrl *controller.Controller, f *fabric.Fabric, key controller.GroupKey, addr dataplane.GroupAddr, hosts []topology.HostID) {
	for _, h := range hosts {
		hdr, err := ctrl.HeaderFor(key, h)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Hypervisors[h].InstallSenderFlow(addr, hdr); err != nil {
			log.Fatal(err)
		}
	}
}

// writeManifest records the exact run parameters next to the CSV
// series so figures are reproducible.
func writeManifest(dir string, topoCfg topology.Config, tenants, groups, srules int, dist string, rs []int, meanVMs float64, seed int64) error {
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]interface{}{
		"topology":       topoCfg,
		"tenants":        tenants,
		"groups":         groups,
		"srule_capacity": srules,
		"distribution":   dist,
		"r_values":       rs,
		"mean_vms_flag":  meanVMs,
		"mean_vms_used":  effectiveMeanVMs(meanVMs, topoCfg, tenants),
		"seed":           seed,
	})
}

func paperController(r, srules int) controller.Config {
	cfg := controller.PaperConfig(r)
	cfg.SRuleCapacity = srules
	return cfg
}

// maxVMsFor keeps tenants placeable: a tenant can hold at most
// min(P, hosts-per-leaf) VMs per rack (one VM per host), so its size
// must fit within 3/4 of the fabric's per-tenant capacity.
func maxVMsFor(t topology.Config, p int) int {
	perRack := t.HostsPerLeaf
	if p > 0 && p < perRack {
		perRack = p
	}
	max := 5000
	if cap := t.Pods * t.LeavesPerPod * perRack * 3 / 4; cap < max {
		max = cap
	}
	if max < 5 {
		max = 5
	}
	return max
}

// effectiveMeanVMs picks the paper's tenant-size mean (178.77) unless
// the fabric is too small to hold it; explicit -meanvms overrides.
func effectiveMeanVMs(flagVal float64, t topology.Config, tenants int) float64 {
	if flagVal > 0 {
		return flagVal
	}
	slots := float64(t.Pods*t.LeavesPerPod*t.HostsPerLeaf) * 20
	cap := 0.7 * slots / float64(tenants)
	if cap > 178.77 {
		return 178.77
	}
	if cap < 5 {
		return 5
	}
	return cap
}

func runControlPlane(topoCfg topology.Config, tenants, groups, srules int, dist groupgen.Distribution, events int, meanVMs float64, seed int64, workers int, doChurn, doFail bool, reg *telemetry.Registry) {
	topo := topology.MustNew(topoCfg)
	dep, err := placement.Place(topo, placement.Config{
		Tenants: tenants, VMsPerHost: 20, MinVMs: 5,
		MaxVMs:  maxVMsFor(topoCfg, 1),
		MeanVMs: effectiveMeanVMs(meanVMs, topoCfg, tenants),
		P:       1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	gs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: groups, MinSize: 5, Dist: dist, Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := controller.New(topo, paperController(0, srules))
	if err != nil {
		log.Fatal(err)
	}
	ctrl.EnableMetrics(reg)
	fmt.Printf("=== control plane: creating %d groups ===\n", len(gs))
	if err := churn.Setup(ctrl, dep, gs, rand.New(rand.NewSource(seed+2))); err != nil {
		log.Fatal(err)
	}
	if doChurn {
		start := time.Now()
		res, err := churn.Run(ctrl, dep, gs, churn.Config{
			Events: events, EventsPerSecond: 1000, Seed: seed + 3, Workers: workers,
			Metrics: churn.NewMetrics(reg),
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Print(res.Table2())
		fmt.Printf("(%d events applied, %d skipped, simulated %.0fs; %d workers, %.0f events/sec wall-clock)\n\n",
			res.EventsApplied, res.EventsSkipped, res.Duration,
			res.Workers, float64(res.EventsApplied)/elapsed.Seconds())
	}
	if doFail {
		res := churn.RunFailures(ctrl, seed+4)
		t := metrics.NewTable("Failure impact (§5.1.3b)",
			"failure", "groups impacted %", "hypervisor updates")
		t.AddRow("one spine", 100*res.SpineImpactedFrac, res.SpineHypervisorUpdates)
		t.AddRow("one core", 100*res.CoreImpactedFrac, res.CoreHypervisorUpdates)
		fmt.Print(t)
	}
}

// csvWriter emits one figure's data series.
type csvWriter struct {
	f *os.File
	w *bufio.Writer
}

func newCSVWriter(dir, name string, columns ...string) (*csvWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	for i, c := range columns {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c)
	}
	w.WriteByte('\n')
	return &csvWriter{f: f, w: w}, nil
}

func (c *csvWriter) row(vals ...interface{}) {
	for i, v := range vals {
		if i > 0 {
			c.w.WriteByte(',')
		}
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(c.w, "%.6g", x)
		default:
			fmt.Fprintf(c.w, "%v", x)
		}
	}
	c.w.WriteByte('\n')
}

func (c *csvWriter) close() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.f.Close()
}

func parseInts(s string) []int {
	var out []int
	cur, has := 0, false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			has = true
		}
	}
	return out
}
