module elmo

go 1.22
